package graph

import (
	"testing"
	"testing/quick"
)

func line(n int) *Graph {
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestBFSLine(t *testing.T) {
	g := line(10)
	dist := g.BFS(0)
	for i, d := range dist {
		if d != int32(i) {
			t.Fatalf("dist[%d] = %d", i, d)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	dist := g.BFS(0)
	if dist[1] != 1 || dist[2] != -1 || dist[4] != -1 {
		t.Fatalf("dist = %v", dist)
	}
}

func TestBFSCycle(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	dist := g.BFS(0)
	want := []int32{0, 1, 2, 3}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("dist = %v", dist)
		}
	}
}

func TestMarshalRoundtrip(t *testing.T) {
	f := func(seed uint64) bool {
		g := Random(200, 8, seed)
		g2, err := Unmarshal(g.Marshal())
		if err != nil {
			return false
		}
		if g2.Len() != g.Len() || g2.Edges() != g.Edges() {
			return false
		}
		for u := 0; u < g.Len(); u++ {
			a, b := g.Neighbors(u), g2.Neighbors(u)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	g := Random(50, 4, 1)
	b := g.Marshal()
	for cut := 0; cut < len(b); cut += 11 {
		if _, err := Unmarshal(b[:cut]); err == nil && cut < len(b)-1 {
			// A prefix can only be valid if it happens to end exactly at
			// a vertex boundary with zero remaining degrees — the varint
			// format makes full validity of strict prefixes impossible
			// here because the vertex count stays fixed.
			t.Fatalf("truncated input at %d accepted", cut)
		}
	}
}

func TestBFSOutOfRangeSource(t *testing.T) {
	g := line(3)
	dist := g.BFS(99)
	for _, d := range dist {
		if d != -1 {
			t.Fatal("out-of-range source produced distances")
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(100, 5, 7)
	b := Random(100, 5, 7)
	if a.Edges() != b.Edges() {
		t.Fatal("Random not deterministic")
	}
}
