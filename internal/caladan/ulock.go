package caladan

import "github.com/easyio-sim/easyio/internal/invariants"

// ULock is a uthread-aware mutex: contended lockers park (releasing their
// core) and the lock is handed off FIFO, keeping the simulation
// deterministic. It is the filesystems' per-inode "level-1" lock.
//
// A nil *Task may lock and unlock as long as there is no contention; this
// supports single-threaded contexts (mount, recovery, functional tests)
// that run outside the uthread runtime.
type ULock struct {
	owner   *UThread
	held    bool // covers nil-task ownership too
	waiters []*UThread
}

// Lock acquires the mutex, parking the calling uthread while contended.
func (l *ULock) Lock(t *Task) {
	if !l.held {
		l.held = true
		if t != nil {
			l.owner = t.ut
			if invariants.Enabled {
				t.ut.heldULocks++
			}
		}
		return
	}
	if t == nil {
		panic("caladan: nil task blocked on contended ULock")
	}
	l.waiters = append(l.waiters, t.ut)
	t.Park()
	// Unlock handed ownership to us before waking.
	if invariants.Enabled {
		if l.owner != t.ut {
			panic("caladan: ULock FIFO handoff woke " + t.ut.name + " without ownership")
		}
		t.ut.heldULocks++
	}
}

// Unlock releases the mutex, handing it to the longest-waiting uthread.
func (l *ULock) Unlock() {
	if !l.held {
		panic("caladan: unlock of unlocked ULock")
	}
	if invariants.Enabled && l.owner != nil {
		l.owner.heldULocks--
		if l.owner.heldULocks < 0 {
			panic("caladan: ULock release count went negative for " + l.owner.name)
		}
	}
	if len(l.waiters) == 0 {
		l.held = false
		l.owner = nil
		return
	}
	next := l.waiters[0]
	l.waiters = l.waiters[1:]
	l.owner = next
	next.Wake()
}

// Held reports whether the lock is currently owned.
func (l *ULock) Held() bool { return l.held }

// Waiters reports the number of parked lockers.
func (l *ULock) Waiters() int { return len(l.waiters) }

// WaitQueue parks uthreads until Broadcast — the filesystems' "level-2"
// completion gate (uthreads waiting for an in-flight DMA write to land).
type WaitQueue struct {
	waiters []*UThread
}

// Wait parks the calling uthread until the next Broadcast.
func (q *WaitQueue) Wait(t *Task) {
	q.waiters = append(q.waiters, t.ut)
	t.Park()
}

// Broadcast wakes all parked uthreads in FIFO order.
func (q *WaitQueue) Broadcast() {
	ws := q.waiters
	q.waiters = nil
	for _, ut := range ws {
		ut.Wake()
	}
}

// Len reports the number of parked uthreads.
func (q *WaitQueue) Len() int { return len(q.waiters) }
