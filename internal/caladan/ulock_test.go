package caladan

import (
	"testing"

	"github.com/easyio-sim/easyio/internal/sim"
)

func TestULockMutualExclusion(t *testing.T) {
	eng, rt := newRT(2)
	var l ULock
	inside := 0
	maxInside := 0
	for i := 0; i < 4; i++ {
		rt.Spawn(-1, "w", func(task *Task) {
			l.Lock(task)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			task.Compute(10 * sim.Microsecond)
			inside--
			l.Unlock()
		})
	}
	eng.Run()
	eng.Shutdown()
	if maxInside != 1 {
		t.Fatalf("critical section overlap: %d", maxInside)
	}
	if l.Held() {
		t.Fatal("lock leaked")
	}
}

func TestULockFIFOHandoff(t *testing.T) {
	eng, rt := newRT(4)
	var l ULock
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		// Stagger arrival so the queue order is 0,1,2,3.
		eng.After(sim.Duration(i)*sim.Microsecond, func() {
			rt.Spawn(i%4, "w", func(task *Task) {
				l.Lock(task)
				order = append(order, i)
				task.Compute(20 * sim.Microsecond)
				l.Unlock()
			})
		})
	}
	eng.Run()
	eng.Shutdown()
	for i, v := range order {
		if v != i {
			t.Fatalf("handoff order = %v", order)
		}
	}
}

func TestULockNilTaskUncontended(t *testing.T) {
	var l ULock
	l.Lock(nil)
	if !l.Held() {
		t.Fatal("not held")
	}
	l.Unlock()
	if l.Held() {
		t.Fatal("still held")
	}
}

func TestULockUnlockUnheldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	var l ULock
	l.Unlock()
}

func TestWaitQueueBroadcast(t *testing.T) {
	eng, rt := newRT(2)
	var q WaitQueue
	woken := 0
	for i := 0; i < 3; i++ {
		rt.Spawn(-1, "w", func(task *Task) {
			q.Wait(task)
			woken++
		})
	}
	eng.After(50*sim.Microsecond, func() {
		if q.Len() != 3 {
			t.Errorf("queue len = %d", q.Len())
		}
		q.Broadcast()
	})
	eng.Run()
	eng.Shutdown()
	if woken != 3 {
		t.Fatalf("woken = %d", woken)
	}
	if q.Len() != 0 {
		t.Fatal("queue not drained")
	}
}
