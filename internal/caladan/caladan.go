// Package caladan is a simulated userspace scheduling runtime in the
// spirit of Caladan [OSDI '20], the framework the paper modifies (§5):
// lightweight uthreads are multiplexed over physical cores, context
// switches cost ~100 ns, a uthread that issues an asynchronous I/O yields
// back to the runtime, the runtime polls completions at every scheduling
// point, and idle cores steal runnable uthreads from busy ones.
//
// Two blocking styles exist because the paper compares both:
//
//   - Park: the uthread releases its core while waiting (asynchronous
//     I/O in EasyIO) — the freed µs-scale window is harvested by running
//     the next runnable uthread.
//   - Wait: the uthread holds its core while waiting (synchronous
//     filesystems busy-waiting on memcpy/DMA, and EasyIO's single-thread
//     busy-poll latency mode in Fig 8).
package caladan

import (
	"fmt"

	"github.com/easyio-sim/easyio/internal/perfmodel"
	"github.com/easyio-sim/easyio/internal/rng"
	"github.com/easyio-sim/easyio/internal/sim"
)

// Options configures a Runtime.
type Options struct {
	// Cores is the number of physical cores (required, > 0).
	Cores int
	// CPU is the software cost profile; zero value means DefaultCPU.
	CPU perfmodel.CPU
	// DisableStealing turns work stealing off (used by the Fig 11
	// two-level-locking ablation, which pins uthreads).
	DisableStealing bool
	// Seed drives the deterministic steal-victim choice.
	Seed uint64
}

// Runtime multiplexes uthreads over simulated cores.
type Runtime struct {
	eng      *sim.Engine
	cpu      perfmodel.CPU
	cores    []*Core
	stealing bool
	rng      *rng.Rand
	nextCore int
	live     int
	onIdle   func() // test hook: all uthreads done
}

// New creates a runtime bound to eng.
func New(eng *sim.Engine, opts Options) *Runtime {
	if opts.Cores <= 0 {
		panic("caladan: Options.Cores must be positive")
	}
	zero := perfmodel.CPU{}
	if opts.CPU == zero {
		opts.CPU = perfmodel.DefaultCPU()
	}
	rt := &Runtime{
		eng:      eng,
		cpu:      opts.CPU,
		stealing: !opts.DisableStealing,
		rng:      rng.New(opts.Seed ^ 0xca1ada),
	}
	for i := 0; i < opts.Cores; i++ {
		c := &Core{rt: rt, id: i, idle: true}
		c.dispatchFn = c.dispatch
		c.runCurrentFn = c.runCurrent
		rt.cores = append(rt.cores, c)
	}
	return rt
}

// Engine returns the simulation engine.
func (rt *Runtime) Engine() *sim.Engine { return rt.eng }

// CPU returns the software cost profile in effect.
func (rt *Runtime) CPU() perfmodel.CPU { return rt.cpu }

// NumCores returns the core count.
func (rt *Runtime) NumCores() int { return len(rt.cores) }

// Core returns core i (for accounting).
func (rt *Runtime) Core(i int) *Core { return rt.cores[i] }

// Live returns the number of uthreads not yet finished.
func (rt *Runtime) Live() int { return rt.live }

// BusyFraction reports the fraction of [0, now] all cores spent running
// uthread work — the paper's "CPU consumption" metric.
func (rt *Runtime) BusyFraction() float64 {
	now := rt.eng.Now()
	if now == 0 {
		return 0
	}
	var busy sim.Duration
	for _, c := range rt.cores {
		busy += c.busyTime(now)
	}
	return float64(busy) / float64(int64(now)*int64(len(rt.cores)))
}

// Spawn creates a uthread homed on the given core (-1 for round-robin).
// fn runs inside the uthread with a Task handle for blocking primitives.
func (rt *Runtime) Spawn(core int, name string, fn func(*Task)) *UThread {
	if core < 0 {
		core = rt.nextCore
		rt.nextCore = (rt.nextCore + 1) % len(rt.cores)
	}
	if core >= len(rt.cores) {
		panic(fmt.Sprintf("caladan: spawn on core %d of %d", core, len(rt.cores)))
	}
	ut := &UThread{rt: rt, core: rt.cores[core], state: utRunnable, name: name}
	ut.resumeFn = func() { ut.core.runCurrent() }
	ut.wakeFn = ut.Wake
	ut.proc = rt.eng.NewProc(name, func(p *sim.Proc) {
		fn(&Task{ut: ut})
	})
	rt.live++
	ut.core.runq = append(ut.core.runq, ut)
	ut.core.maybeDispatch()
	rt.kickIdleCores()
	return ut
}

// kickIdleCores wakes idle cores when stealable surplus exists elsewhere,
// so queued work spreads without waiting for a busy core's next
// scheduling point.
func (rt *Runtime) kickIdleCores() {
	if !rt.stealing {
		return
	}
	for _, c := range rt.cores {
		if c.idle && !c.dispatchPending && c.cur == nil && len(c.runq) == 0 && c.stealable() {
			c.dispatchPending = true
			c.markBusy()
			rt.eng.After(rt.cpu.UthreadSwitch+rt.cpu.PollCheck, c.dispatchFn)
		}
	}
}

// utState tracks where a uthread is in its lifecycle.
type utState int

const (
	utRunnable utState = iota // in some core's runq
	utRunning                 // current on a core (incl. Compute phases)
	utWaiting                 // holding its core, blocked on Wake
	utParked                  // off-core, blocked on Wake
	utDone
)

// UThread is a lightweight userspace thread.
type UThread struct {
	rt    *Runtime
	proc  *sim.Proc
	core  *Core
	state utState
	name  string

	req         request
	wakePending bool

	// scratch is an opaque per-uthread slot for the filesystem layers'
	// reusable operation state (descriptor pools, staging buffers,
	// pre-bound completion callbacks). Operations on one uthread are
	// strictly sequential, so a single slot suffices; only pointers go
	// in, which keeps the any-store allocation-free.
	scratch any

	// resumeFn/wakeFn are pre-bound once at Spawn: completion callbacks
	// fire them per request, and a fresh closure there would put an
	// allocation on every wake (the uthread may migrate cores, so they
	// read ut.core at call time, same as the literal they replace).
	resumeFn func()
	wakeFn   func()

	// heldULocks counts ULocks this uthread currently owns. It is
	// maintained only under the easyio_invariants build tag, where the
	// two-level-locking assertion (no completion wait while holding a
	// level-1 lock) consumes it.
	heldULocks int
}

// Name returns the uthread's diagnostic name.
func (ut *UThread) Name() string { return ut.name }

// WakeFn returns the pre-bound Wake callback. Completion paths (DMA
// OnComplete, flow OnDone) should pass this instead of a fresh closure
// or method value, which would allocate per completion.
func (ut *UThread) WakeFn() func() { return ut.wakeFn }

// Done reports whether the uthread has finished.
func (ut *UThread) Done() bool { return ut.state == utDone }

// request is what a uthread asked for when it paused.
type request struct {
	kind    reqKind
	compute sim.Duration
}

type reqKind int

const (
	reqNone reqKind = iota
	reqCompute
	reqYield
	reqPark
	reqWait
)

// Wake makes a blocked uthread runnable. Completion callbacks (DMA, flow
// done) call this from event context; it models the runtime observing the
// completion at its next scheduling point. Waking a running or runnable
// uthread sets a pending flag consumed by the next Park/Wait (no lost
// wakeups).
func (ut *UThread) Wake() {
	switch ut.state {
	case utDone:
		return
	case utRunning, utRunnable:
		ut.wakePending = true
	case utWaiting:
		// Busy-waiting: the core is spinning on the completion; it
		// observes it after one poll check.
		ut.state = utRunning
		ut.rt.eng.After(ut.rt.cpu.PollCheck, ut.resumeFn)
	case utParked:
		ut.state = utRunnable
		home := ut.core
		if home.idle {
			home.runq = append(home.runq, ut)
			home.maybeDispatch()
			return
		}
		if ut.rt.stealing {
			if c := ut.rt.idleCore(); c != nil {
				ut.core = c
				c.runq = append(c.runq, ut)
				c.maybeDispatch()
				return
			}
		}
		home.runq = append(home.runq, ut)
		ut.rt.kickIdleCores()
	}
}

// idleCore returns an idle core, or nil.
func (rt *Runtime) idleCore() *Core {
	for _, c := range rt.cores {
		if c.idle && len(c.runq) == 0 {
			return c
		}
	}
	return nil
}

// Core is one simulated physical core.
type Core struct {
	rt   *Runtime
	id   int
	runq []*UThread
	cur  *UThread
	idle bool

	dispatchPending bool
	busyAccum       sim.Duration
	busySince       sim.Time
	switches        int64

	// dispatchFn/runCurrentFn are the scheduling callbacks pre-bound at
	// core construction: every scheduling point passes one of them to
	// eng.After, and a method value there would allocate a bound-method
	// closure per dispatch (see //easyio:hotpath on the callers).
	dispatchFn   func()
	runCurrentFn func()
}

// ID returns the core index.
func (c *Core) ID() int { return c.id }

// QueueLen reports the runnable queue length.
func (c *Core) QueueLen() int { return len(c.runq) }

// Switches reports the number of uthread dispatches.
func (c *Core) Switches() int64 { return c.switches }

// busyTime returns cumulative busy time as of now.
func (c *Core) busyTime(now sim.Time) sim.Duration {
	b := c.busyAccum
	if !c.idle {
		b += sim.Duration(now - c.busySince)
	}
	return b
}

// BusyTime reports cumulative busy time.
func (c *Core) BusyTime() sim.Duration { return c.busyTime(c.rt.eng.Now()) }

func (c *Core) markBusy() {
	if c.idle {
		c.idle = false
		c.busySince = c.rt.eng.Now()
	}
}

func (c *Core) markIdle() {
	if !c.idle {
		c.busyAccum += sim.Duration(c.rt.eng.Now() - c.busySince)
		c.idle = true
	}
}

// maybeDispatch schedules a dispatch if the core is idle with work queued.
func (c *Core) maybeDispatch() {
	if c.dispatchPending || c.cur != nil || len(c.runq) == 0 {
		return
	}
	c.dispatchPending = true
	c.markBusy()
	// Context switch + completion poll at every scheduling point.
	c.rt.eng.After(c.rt.cpu.UthreadSwitch+c.rt.cpu.PollCheck, c.dispatchFn)
}

// dispatch installs the next runnable uthread and runs it.
func (c *Core) dispatch() {
	c.dispatchPending = false
	if c.cur != nil {
		return
	}
	if len(c.runq) == 0 {
		if !c.steal() {
			c.markIdle()
			return
		}
	}
	// Shift-pop so the backing array is reused: a [1:] reslice would make
	// every later Wake append reallocate the queue.
	ut := c.runq[0]
	copy(c.runq, c.runq[1:])
	c.runq[len(c.runq)-1] = nil
	c.runq = c.runq[:len(c.runq)-1]
	ut.core = c
	ut.state = utRunning
	c.cur = ut
	c.switches++
	c.markBusy()
	c.runCurrent()
}

// steal takes one uthread from the tail of the most loaded core's queue.
func (c *Core) steal() bool {
	if !c.rt.stealing {
		return false
	}
	var victim *Core
	best := 0
	for _, v := range c.rt.cores {
		if v != c && len(v.runq) > best {
			victim, best = v, len(v.runq)
		}
	}
	if victim == nil {
		return false
	}
	ut := victim.runq[len(victim.runq)-1]
	victim.runq = victim.runq[:len(victim.runq)-1]
	ut.core = c
	c.runq = append(c.runq, ut)
	return true
}

// runCurrent resumes the current uthread and handles the request it pauses
// with. Runs from event context.
func (c *Core) runCurrent() {
	ut := c.cur
	if ut == nil {
		return
	}
	alive := ut.proc.Resume()
	if !alive {
		ut.state = utDone
		c.cur = nil
		c.rt.live--
		if c.rt.live == 0 && c.rt.onIdle != nil {
			c.rt.onIdle()
		}
		c.next()
		return
	}
	switch ut.req.kind {
	case reqCompute:
		d := ut.req.compute
		c.rt.eng.After(d, c.runCurrentFn)
	case reqYield:
		ut.state = utRunnable
		c.cur = nil
		c.runq = append(c.runq, ut)
		c.next()
	case reqPark:
		if ut.wakePending {
			ut.wakePending = false
			ut.state = utRunnable
			c.cur = nil
			c.runq = append(c.runq, ut)
			c.next()
			return
		}
		ut.state = utParked
		c.cur = nil
		c.next()
	case reqWait:
		if ut.wakePending {
			ut.wakePending = false
			c.rt.eng.After(c.rt.cpu.PollCheck, c.runCurrentFn)
			return
		}
		ut.state = utWaiting
		// Core spins: stays busy, runs nothing else.
	default:
		panic("caladan: uthread paused without a request")
	}
}

// next triggers the following dispatch (or idles the core).
func (c *Core) next() {
	if len(c.runq) > 0 || c.stealable() {
		c.dispatchPending = true
		c.rt.eng.After(c.rt.cpu.UthreadSwitch+c.rt.cpu.PollCheck, c.dispatchFn)
		return
	}
	c.markIdle()
}

func (c *Core) stealable() bool {
	if !c.rt.stealing {
		return false
	}
	for _, v := range c.rt.cores {
		if v != c && len(v.runq) > 0 {
			return true
		}
	}
	return false
}

// Task is the handle a uthread's body uses to interact with the runtime.
type Task struct {
	ut *UThread
}

// Runtime returns the owning runtime.
func (t *Task) Runtime() *Runtime { return t.ut.rt }

// Scratch returns the uthread's opaque filesystem scratch slot.
func (t *Task) Scratch() any { return t.ut.scratch }

// SetScratch installs the uthread's filesystem scratch. Store pointers
// only: a pointer-shaped value boxes for free.
func (t *Task) SetScratch(v any) { t.ut.scratch = v }

// Engine returns the simulation engine.
func (t *Task) Engine() *sim.Engine { return t.ut.rt.eng }

// Now returns the current virtual time.
func (t *Task) Now() sim.Time { return t.ut.rt.eng.Now() }

// UThread returns the underlying uthread (for Wake by completion
// callbacks).
func (t *Task) UThread() *UThread { return t.ut }

// HeldULocks reports how many ULocks the uthread currently owns. The
// count is maintained only under the easyio_invariants build tag and is
// always zero otherwise.
func (t *Task) HeldULocks() int { return t.ut.heldULocks }

// Compute occupies the core for d of application/filesystem CPU work.
func (t *Task) Compute(d sim.Duration) {
	if d <= 0 {
		return
	}
	t.ut.req = request{kind: reqCompute, compute: d}
	t.ut.proc.Pause()
}

// Yield places the uthread at the back of its core's run queue
// (thread_yield in Caladan) and runs the next runnable uthread.
func (t *Task) Yield() {
	t.ut.req = request{kind: reqYield}
	t.ut.proc.Pause()
}

// Park releases the core until Wake. This is the asynchronous-I/O blocking
// style: the freed window is harvested by other uthreads.
func (t *Task) Park() {
	t.ut.req = request{kind: reqPark}
	t.ut.proc.Pause()
}

// Wait blocks while *holding* the core (busy-polling) until Wake. This is
// the synchronous-I/O blocking style.
func (t *Task) Wait() {
	t.ut.req = request{kind: reqWait}
	t.ut.proc.Pause()
}

// Sleep parks the uthread for d of virtual time.
func (t *Task) Sleep(d sim.Duration) {
	ut := t.ut
	t.Engine().After(d, func() { ut.Wake() })
	t.Park()
}
