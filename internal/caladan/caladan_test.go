package caladan

import (
	"testing"

	"github.com/easyio-sim/easyio/internal/perfmodel"
	"github.com/easyio-sim/easyio/internal/sim"
)

func newRT(cores int) (*sim.Engine, *Runtime) {
	eng := sim.NewEngine()
	return eng, New(eng, Options{Cores: cores, Seed: 1})
}

func TestComputeOccupiesCore(t *testing.T) {
	eng, rt := newRT(1)
	var end sim.Time
	rt.Spawn(0, "w", func(task *Task) {
		task.Compute(10 * sim.Microsecond)
		end = task.Now()
	})
	eng.Run()
	eng.Shutdown()
	if end < sim.Time(10*sim.Microsecond) {
		t.Fatalf("end = %v", end)
	}
	c := rt.Core(0)
	if c.BusyTime() < 10*sim.Microsecond {
		t.Fatalf("busy = %v", c.BusyTime())
	}
}

func TestTwoUthreadsShareOneCore(t *testing.T) {
	eng, rt := newRT(1)
	var aDone, bDone sim.Time
	rt.Spawn(0, "a", func(task *Task) {
		task.Compute(10 * sim.Microsecond)
		aDone = task.Now()
	})
	rt.Spawn(0, "b", func(task *Task) {
		task.Compute(10 * sim.Microsecond)
		bDone = task.Now()
	})
	eng.Run()
	eng.Shutdown()
	// Cooperative scheduling: a runs to completion first, then b.
	if aDone >= bDone {
		t.Fatalf("a %v, b %v", aDone, bDone)
	}
	if bDone < sim.Time(20*sim.Microsecond) {
		t.Fatalf("b done too early: %v", bDone)
	}
}

func TestYieldInterleaves(t *testing.T) {
	eng, rt := newRT(1)
	var order []string
	mk := func(name string) func(*Task) {
		return func(task *Task) {
			for i := 0; i < 3; i++ {
				order = append(order, name)
				task.Compute(1 * sim.Microsecond)
				task.Yield()
			}
		}
	}
	rt.Spawn(0, "a", mk("a"))
	rt.Spawn(0, "b", mk("b"))
	eng.Run()
	eng.Shutdown()
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestParkFreesCoreForOtherWork(t *testing.T) {
	// a parks for 100us (async I/O), b computes during the window.
	eng, rt := newRT(1)
	var bDone, aDone sim.Time
	rt.Spawn(0, "a", func(task *Task) {
		task.Sleep(100 * sim.Microsecond)
		aDone = task.Now()
	})
	rt.Spawn(0, "b", func(task *Task) {
		task.Compute(50 * sim.Microsecond)
		bDone = task.Now()
	})
	eng.Run()
	eng.Shutdown()
	if bDone > sim.Time(60*sim.Microsecond) {
		t.Fatalf("b not overlapped with a's park: %v", bDone)
	}
	if aDone < sim.Time(100*sim.Microsecond) {
		t.Fatalf("a woke early: %v", aDone)
	}
}

func TestWaitHoldsCore(t *testing.T) {
	// a Waits (busy-polls) for 100us; b cannot run during that window on a
	// 1-core runtime.
	eng, rt := newRT(1)
	var bStart sim.Time
	ut := rt.Spawn(0, "a", func(task *Task) {
		task.Wait()
	})
	rt.Spawn(0, "b", func(task *Task) {
		bStart = task.Now()
		task.Compute(sim.Microsecond)
	})
	eng.After(100*sim.Microsecond, func() { ut.Wake() })
	eng.Run()
	eng.Shutdown()
	if bStart < sim.Time(100*sim.Microsecond) {
		t.Fatalf("b ran while a was busy-waiting: %v", bStart)
	}
	if rt.Core(0).BusyTime() < 100*sim.Microsecond {
		t.Fatalf("core not busy during Wait: %v", rt.Core(0).BusyTime())
	}
}

func TestWakePendingBeforePark(t *testing.T) {
	// Wake arrives while the uthread is still running: the next Park must
	// not block.
	eng, rt := newRT(1)
	done := false
	ut := rt.Spawn(0, "a", func(task *Task) {
		task.Compute(10 * sim.Microsecond)
		task.Park() // wake already pending
		done = true
	})
	eng.After(sim.Microsecond, func() { ut.Wake() })
	eng.Run()
	eng.Shutdown()
	if !done {
		t.Fatal("lost wakeup")
	}
}

func TestWorkStealingBalances(t *testing.T) {
	// 8 uthreads all homed on core 0 of a 4-core runtime: idle cores
	// should steal, so the makespan is ~2 rounds, not 8.
	eng, rt := newRT(4)
	var last sim.Time
	for i := 0; i < 8; i++ {
		rt.Spawn(0, "w", func(task *Task) {
			task.Compute(100 * sim.Microsecond)
			last = task.Now()
		})
	}
	eng.Run()
	eng.Shutdown()
	if last > sim.Time(250*sim.Microsecond) {
		t.Fatalf("makespan %v suggests no stealing", last)
	}
	busy1 := rt.Core(1).BusyTime()
	if busy1 < 100*sim.Microsecond {
		t.Fatalf("core 1 stole nothing: %v", busy1)
	}
}

func TestStealingDisabled(t *testing.T) {
	eng := sim.NewEngine()
	rt := New(eng, Options{Cores: 4, DisableStealing: true})
	var last sim.Time
	for i := 0; i < 4; i++ {
		rt.Spawn(0, "w", func(task *Task) {
			task.Compute(100 * sim.Microsecond)
			last = task.Now()
		})
	}
	eng.Run()
	eng.Shutdown()
	if last < sim.Time(400*sim.Microsecond) {
		t.Fatalf("work ran in parallel despite pinning: %v", last)
	}
	if rt.Core(1).BusyTime() != 0 {
		t.Fatal("core 1 busy with stealing disabled")
	}
}

func TestParkedWakeOnIdleRemoteCore(t *testing.T) {
	// A parked uthread whose home core is busy is stolen by an idle core
	// at wake time (Caladan's finished-I/O stealing, §5).
	eng, rt := newRT(2)
	var aResumed sim.Time
	a := rt.Spawn(0, "a", func(task *Task) {
		task.Park()
		aResumed = task.Now()
		task.Compute(sim.Microsecond)
	})
	// Hog core 0 far beyond the wake point.
	rt.Spawn(0, "hog", func(task *Task) {
		task.Compute(1000 * sim.Microsecond)
	})
	eng.After(10*sim.Microsecond, func() { a.Wake() })
	eng.Run()
	eng.Shutdown()
	if aResumed > sim.Time(20*sim.Microsecond) {
		t.Fatalf("woken uthread waited for busy home core: %v", aResumed)
	}
}

func TestBusyFraction(t *testing.T) {
	eng, rt := newRT(2)
	rt.Spawn(0, "w", func(task *Task) {
		task.Compute(100 * sim.Microsecond)
	})
	eng.RunUntil(sim.Time(100 * sim.Microsecond))
	bf := rt.BusyFraction()
	if bf < 0.45 || bf > 0.55 {
		t.Fatalf("busy fraction = %v, want ~0.5 (1 of 2 cores busy)", bf)
	}
	eng.Run()
	eng.Shutdown()
}

func TestSwitchCostCharged(t *testing.T) {
	cpu := perfmodel.DefaultCPU()
	eng, rt := newRT(1)
	var done sim.Time
	rt.Spawn(0, "w", func(task *Task) {
		done = task.Now()
	})
	eng.Run()
	eng.Shutdown()
	if done < sim.Time(cpu.UthreadSwitch) {
		t.Fatalf("dispatch charged no switch cost: %v", done)
	}
}

func TestLiveCount(t *testing.T) {
	eng, rt := newRT(1)
	rt.Spawn(0, "w", func(task *Task) { task.Compute(sim.Microsecond) })
	rt.Spawn(0, "v", func(task *Task) { task.Compute(sim.Microsecond) })
	if rt.Live() != 2 {
		t.Fatalf("live = %d", rt.Live())
	}
	eng.Run()
	eng.Shutdown()
	if rt.Live() != 0 {
		t.Fatalf("live after run = %d", rt.Live())
	}
}

func TestRoundRobinSpawn(t *testing.T) {
	eng, rt := newRT(3)
	counts := make([]int, 3)
	for i := 0; i < 9; i++ {
		ut := rt.Spawn(-1, "w", func(task *Task) {})
		counts[ut.core.id]++
	}
	for i, c := range counts {
		if c != 3 {
			t.Fatalf("core %d got %d uthreads: %v", i, c, counts)
		}
	}
	eng.Run()
	eng.Shutdown()
}

func TestDeterministicSchedule(t *testing.T) {
	run := func() []sim.Time {
		eng, rt := newRT(2)
		var ts []sim.Time
		for i := 0; i < 6; i++ {
			d := sim.Duration(i+1) * sim.Microsecond
			rt.Spawn(-1, "w", func(task *Task) {
				task.Compute(d)
				task.Yield()
				task.Compute(d)
				ts = append(ts, task.Now())
			})
		}
		eng.Run()
		eng.Shutdown()
		return ts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule nondeterministic at %d", i)
		}
	}
}
