package pmem

// Crash simulation: while tracking is enabled the device records every
// store together with its fence epoch. A crash image is any state
// reachable under the persistence model: all stores from epochs before the
// crash epoch are durable, while stores inside the crash epoch may have
// reached the media in any subset (hardware may reorder stores between
// fences). CrashImage materialises one such state as a fresh Device.

// PersistRecord is one tracked store.
type PersistRecord struct {
	Epoch int
	Off   int64
	Data  []byte
}

// EnableTracking snapshots the current contents as the durable base state
// and starts recording stores and fences.
func (d *Device) EnableTracking() {
	d.tracking = true
	d.records = nil
	d.epoch = 0
	d.base = make(map[int64]*[pageSize]byte, len(d.pages))
	for pg, p := range d.pages {
		cp := *p
		d.base[pg] = &cp
	}
}

// DisableTracking stops recording and releases the snapshot.
func (d *Device) DisableTracking() {
	d.tracking = false
	d.records = nil
	d.base = nil
}

// Tracking reports whether persistence tracking is active.
func (d *Device) Tracking() bool { return d.tracking }

// Records returns the tracked stores in program order. The result is a
// deep copy: callers (crashmonkey mutates subsets while exploring crash
// states) must not be able to corrupt the device's own record stream
// through it.
func (d *Device) Records() []PersistRecord {
	if len(d.records) == 0 {
		return nil
	}
	out := make([]PersistRecord, len(d.records))
	for i, r := range d.records {
		data := make([]byte, len(r.Data))
		copy(data, r.Data)
		out[i] = PersistRecord{Epoch: r.Epoch, Off: r.Off, Data: data}
	}
	return out
}

// Epoch returns the current fence epoch (number of fences so far).
func (d *Device) Epoch() int { return d.epoch }

// CrashImage builds a post-crash device: the tracked base state plus the
// records whose indexes appear in applied, applied in ascending index
// order. Callers are responsible for choosing a persistence-legal subset
// (all records of earlier epochs plus any subset of one epoch); the
// LegalCrashSubsets helper in package crashmonkey does this.
func (d *Device) CrashImage(applied []int) *Device {
	img := New(d.eng, d.model, d.size)
	for pg, p := range d.base {
		cp := *p
		img.pages[pg] = &cp
	}
	for _, i := range applied {
		r := d.records[i]
		img.WriteAt(r.Off, r.Data)
	}
	return img
}

// EpochBounds returns, for each epoch e in [0, Epoch()], the half-open
// record index range [starts[e], starts[e+1]) of stores issued in e.
// len(result) == Epoch()+2.
func (d *Device) EpochBounds() []int {
	starts := make([]int, d.epoch+2)
	cur := 0
	for i, r := range d.records {
		for cur < r.Epoch {
			cur++
			starts[cur] = i
		}
	}
	for cur < d.epoch+1 {
		cur++
		starts[cur] = len(d.records)
	}
	return starts
}
