package pmem

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"github.com/easyio-sim/easyio/internal/perfmodel"
	"github.com/easyio-sim/easyio/internal/rng"
	"github.com/easyio-sim/easyio/internal/sim"
)

func newDev() (*sim.Engine, *Device) {
	eng := sim.NewEngine()
	return eng, New(eng, perfmodel.MicroNode(), 1<<30)
}

func TestReadWriteRoundtrip(t *testing.T) {
	_, d := newDev()
	data := []byte("hello slow memory")
	d.WriteAt(12345, data)
	got := make([]byte, len(data))
	d.ReadAt(got, 12345)
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
}

func TestReadUnwrittenIsZero(t *testing.T) {
	_, d := newDev()
	b := []byte{1, 2, 3, 4}
	d.ReadAt(b, 999)
	for _, v := range b {
		if v != 0 {
			t.Fatalf("unwritten read = %v", b)
		}
	}
}

func TestCrossPageWrite(t *testing.T) {
	_, d := newDev()
	data := make([]byte, 3*pageSize+17)
	rng.New(1).Bytes(data)
	off := int64(pageSize - 5)
	d.WriteAt(off, data)
	got := make([]byte, len(data))
	d.ReadAt(got, off)
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page roundtrip mismatch")
	}
	// Byte just before and after remain zero.
	b := make([]byte, 1)
	d.ReadAt(b, off-1)
	if b[0] != 0 {
		t.Fatal("byte before write dirtied")
	}
}

func TestRoundtripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		_, d := newDev()
		type w struct {
			off  int64
			data []byte
		}
		var writes []w
		for i := 0; i < 20; i++ {
			n := 1 + g.Intn(3*pageSize)
			off := g.Int63n(d.Size() - int64(n))
			data := make([]byte, n)
			g.Bytes(data)
			d.WriteAt(off, data)
			writes = append(writes, w{off, data})
		}
		// Last write at each offset wins: verify the final write fully.
		last := writes[len(writes)-1]
		got := make([]byte, len(last.data))
		d.ReadAt(got, last.off)
		return bytes.Equal(got, last.data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWrite8Read8(t *testing.T) {
	_, d := newDev()
	d.Write8(4096-4, 0x1122334455667788) // cross page boundary
	if got := d.Read8(4096 - 4); got != 0x1122334455667788 {
		t.Fatalf("got %#x", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	_, d := newDev()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	d.WriteAt(d.Size()-2, []byte{1, 2, 3})
}

func TestSingleCPUWriteFlowRate(t *testing.T) {
	eng, d := newDev()
	m := d.Model()
	const n = 2_000_000
	var doneAt sim.Time = -1
	d.StartFlow(FlowSpec{Write: true, Kind: FlowCPU, Bytes: n, OnDone: func() { doneAt = eng.Now() }})
	eng.Run()
	want := float64(n) / m.CPUWriteRate * 1e9
	if doneAt < 0 {
		t.Fatal("flow never completed")
	}
	if math.Abs(float64(doneAt)-want) > want*0.01 {
		t.Fatalf("completed at %v, want ~%.0fns", doneAt, want)
	}
}

func TestConcurrentCPUWritersDegrade(t *testing.T) {
	eng, d := newDev()
	m := d.Model()
	const n = 1_000_000
	done := 0
	var last sim.Time
	for i := 0; i < 4; i++ {
		d.StartFlow(FlowSpec{Write: true, Kind: FlowCPU, Bytes: n, OnDone: func() { done++; last = eng.Now() }})
	}
	eng.Run()
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
	perCore := m.CPURate(true, 4)
	want := float64(n) / perCore * 1e9
	if math.Abs(float64(last)-want) > want*0.02 {
		t.Fatalf("4-writer completion at %v, want ~%.0f (rate %.2f GB/s)", last, want, perCore/1e9)
	}
	if perCore >= m.CPUWriteRate {
		t.Fatal("no degradation under concurrency")
	}
}

func TestDMAWriteSaturatesNodeCap(t *testing.T) {
	eng, d := newDev()
	m := d.Model()
	const n = 10_000_000
	var doneAt sim.Time
	d.StartFlow(FlowSpec{Write: true, Kind: FlowDMA, Bytes: n, OnDone: func() { doneAt = eng.Now() }})
	eng.Run()
	// One channel's intrinsic 9 GB/s exceeds both the engine cap and the
	// DIMM cap (6.6), so the flow runs at 6.6 GB/s.
	want := float64(n) / m.WriteCap * 1e9
	if math.Abs(float64(doneAt)-want) > want*0.01 {
		t.Fatalf("done at %v, want ~%.0f", doneAt, want)
	}
}

func TestDMAReadEngineCap(t *testing.T) {
	eng, d := newDev()
	m := d.Model()
	const n = 5_000_000
	done := 0
	var last sim.Time
	for i := 0; i < 4; i++ {
		d.StartFlow(FlowSpec{Write: false, Kind: FlowDMA, Bytes: n, OnDone: func() { done++; last = eng.Now() }})
	}
	eng.Run()
	// 4 channels * 2.9 = 11.6 intrinsic but engine read cap is 5.6 GB/s.
	want := float64(4*n) / m.DMAReadCap * 1e9
	if math.Abs(float64(last)-want) > want*0.02 {
		t.Fatalf("done at %v, want ~%.0f", last, want)
	}
	_ = done
}

func TestWeightedSharing(t *testing.T) {
	eng, d := newDev()
	const n = 4_000_000
	var bigDone, smallDone sim.Time
	// Two DMA read flows on one engine: weight 4 vs 1 under the 5.6 GB/s
	// engine cap. The heavy flow should finish much earlier per byte.
	d.StartFlow(FlowSpec{Kind: FlowDMA, Bytes: n, Weight: 4, OnDone: func() { bigDone = eng.Now() }})
	d.StartFlow(FlowSpec{Kind: FlowDMA, Bytes: n, Weight: 1, OnDone: func() { smallDone = eng.Now() }})
	eng.Run()
	if bigDone >= smallDone {
		t.Fatalf("weighted flow not favored: big %v small %v", bigDone, smallDone)
	}
}

func TestFlowProgressAndCancel(t *testing.T) {
	eng, d := newDev()
	const n = 2_000_000
	f := d.StartFlow(FlowSpec{Write: true, Kind: FlowCPU, Bytes: n, OnDone: func() { t.Error("OnDone after cancel") }})
	// Half the expected duration: progress ~0.5.
	half := sim.Duration(float64(n) / d.Model().CPUWriteRate * 1e9 / 2)
	eng.After(half, func() {
		p := f.Progress()
		if p < 0.45 || p > 0.55 {
			t.Errorf("progress = %v, want ~0.5", p)
		}
		if !f.Cancel() {
			t.Error("cancel failed")
		}
		if f.Cancel() {
			t.Error("double cancel succeeded")
		}
	})
	eng.Run()
	if !f.Done() {
		t.Fatal("flow not done after cancel")
	}
}

func TestZeroByteFlowCompletes(t *testing.T) {
	eng, d := newDev()
	done := false
	d.StartFlow(FlowSpec{Bytes: 0, OnDone: func() { done = true }})
	eng.Run()
	if !done {
		t.Fatal("zero-byte flow never completed")
	}
}

func TestMaxminRespectsLimitsAndCap(t *testing.T) {
	limit := []float64{1, 10, 10}
	weight := []float64{1, 1, 2}
	alloc := make([]float64, 3)
	maxmin(limit, weight, alloc, make([]bool, 3), 7)
	// Item 0 satisfied at 1; remaining 6 split 1:2 -> 2 and 4.
	want := []float64{1, 2, 4}
	for i := range want {
		if math.Abs(alloc[i]-want[i]) > 1e-9 {
			t.Fatalf("alloc = %v, want %v", alloc, want)
		}
	}
}

func TestMaxminUnderloaded(t *testing.T) {
	limit := []float64{1, 2}
	alloc := make([]float64, 2)
	maxmin(limit, []float64{1, 1}, alloc, make([]bool, 2), 100)
	if alloc[0] != 1 || alloc[1] != 2 {
		t.Fatalf("alloc = %v", alloc)
	}
}

func TestTrackingAndCrashImage(t *testing.T) {
	_, d := newDev()
	d.WriteAt(0, []byte("base"))
	d.EnableTracking()
	d.WriteAt(100, []byte("aa")) // epoch 0, record 0
	d.Fence()
	d.WriteAt(200, []byte("bb")) // epoch 1, record 1
	d.WriteAt(300, []byte("cc")) // epoch 1, record 2
	d.Fence()

	if d.Epoch() != 2 || len(d.Records()) != 3 {
		t.Fatalf("epoch=%d records=%d", d.Epoch(), len(d.Records()))
	}

	// Crash with only records 0 and 2 applied (legal: all of epoch 0 +
	// subset of epoch 1).
	img := d.CrashImage([]int{0, 2})
	b := make([]byte, 4)
	img.ReadAt(b, 0)
	if string(b) != "base" {
		t.Fatalf("base lost: %q", b)
	}
	b2 := make([]byte, 2)
	img.ReadAt(b2, 100)
	if string(b2) != "aa" {
		t.Fatal("record 0 missing")
	}
	img.ReadAt(b2, 200)
	if b2[0] != 0 || b2[1] != 0 {
		t.Fatal("unapplied record present")
	}
	img.ReadAt(b2, 300)
	if string(b2) != "cc" {
		t.Fatal("record 2 missing")
	}
	// Original device unaffected.
	d.ReadAt(b2, 200)
	if string(b2) != "bb" {
		t.Fatal("live device lost data")
	}
}

func TestEpochBounds(t *testing.T) {
	_, d := newDev()
	d.EnableTracking()
	d.WriteAt(0, []byte{1}) // e0 r0
	d.WriteAt(1, []byte{1}) // e0 r1
	d.Fence()
	d.Fence()               // empty epoch 1
	d.WriteAt(2, []byte{1}) // e2 r2
	d.Fence()
	bounds := d.EpochBounds()
	want := []int{0, 2, 2, 3, 3}
	if len(bounds) != len(want) {
		t.Fatalf("bounds = %v, want %v", bounds, want)
	}
	for i := range want {
		if bounds[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", bounds, want)
		}
	}
}

func TestDisableTracking(t *testing.T) {
	_, d := newDev()
	d.EnableTracking()
	d.WriteAt(0, []byte{1})
	d.DisableTracking()
	if d.Tracking() || d.Records() != nil {
		t.Fatal("tracking not disabled")
	}
}

func TestRecordsReturnsDeepCopy(t *testing.T) {
	_, d := newDev()
	d.EnableTracking()
	d.WriteAt(0, []byte{1, 2, 3})
	d.Fence()
	d.WriteAt(64, []byte{4, 5})

	recs := d.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	// Mutate everything the caller can reach: the slice, the structs,
	// and the data payloads.
	recs[0].Data[0] = 99
	recs[1].Epoch = 42
	recs[1].Off = 4096
	recs = append(recs[:0], PersistRecord{})

	fresh := d.Records()
	if len(fresh) != 2 {
		t.Fatalf("device record stream corrupted: %d records", len(fresh))
	}
	if fresh[0].Data[0] != 1 {
		t.Fatalf("payload aliased: got %d, want 1", fresh[0].Data[0])
	}
	if fresh[1].Epoch != 1 || fresh[1].Off != 64 {
		t.Fatalf("record aliased: %+v", fresh[1])
	}
}
