// Package pmem simulates a slow-memory device (Optane DCPMM or a
// CXL-attached NVM pool) with two decoupled planes:
//
//   - A functional plane: a sparse, byte-addressable persistent store with
//     real contents, store/fence persistence semantics and crash-image
//     generation (what survives a power failure).
//   - A temporal plane: bandwidth arbitration between concurrent transfer
//     flows (CPU memcpy loops and DMA channel transfers) using weighted
//     max-min fair sharing under the capacity model in perfmodel —
//     per-core CPU rate degradation, DIMM direction caps with write
//     anti-scaling, and per-DMA-engine caps.
//
// Flows model *time*: callers start a flow for the bytes they move and are
// notified when the device has streamed them; the functional copy is then
// performed by the caller (so data lands atomically at completion time,
// which is also when it becomes durable for DMA writes).
package pmem

import (
	"fmt"
	"math"

	"github.com/easyio-sim/easyio/internal/invariants"
	"github.com/easyio-sim/easyio/internal/perfmodel"
	"github.com/easyio-sim/easyio/internal/sim"
)

const pageSize = perfmodel.PageSize

// Kind distinguishes who is moving the data; it selects the rate model.
type Kind int

const (
	// FlowCPU is a core executing a load/store copy loop.
	FlowCPU Kind = iota
	// FlowDMA is an on-chip DMA engine channel transfer.
	FlowDMA
)

// FlowSpec describes a transfer to be timed by the device.
type FlowSpec struct {
	// Write is true for DRAM->PM transfers.
	Write bool
	Kind  Kind
	// Bytes is the transfer length.
	Bytes int64
	// Weight biases the max-min share (DMA engines serve large
	// descriptors disproportionately; see §2.2 "latency spikes").
	// Zero means weight 1.
	Weight float64
	// Group identifies the DMA engine for per-engine caps (ignored for
	// CPU flows).
	Group int
	// Remote applies the cross-NUMA penalty to CPU flows.
	Remote bool
	// OnDone fires from event context when the last byte has streamed.
	OnDone func()
}

// Flow is an in-flight transfer.
type Flow struct {
	dev       *Device
	spec      FlowSpec
	remaining float64
	rate      float64 // bytes/sec allocated by the last recompute
	limit     float64 // per-recompute scratch: demand after stage-1 caps
	done      bool
}

// Progress reports the fraction of the flow completed in [0, 1].
func (f *Flow) Progress() float64 {
	if f.done {
		return 1
	}
	f.dev.advance()
	if f.spec.Bytes == 0 {
		return 1
	}
	p := 1 - f.remaining/float64(f.spec.Bytes)
	if p < 0 {
		p = 0
	}
	return p
}

// Done reports whether the flow has completed or been cancelled.
func (f *Flow) Done() bool { return f.done }

// Cancel removes an in-flight flow without firing OnDone. It reports
// whether the flow was still active.
func (f *Flow) Cancel() bool {
	if f.done {
		return false
	}
	f.dev.advance()
	f.done = true
	f.dev.removeFlow(f)
	f.dev.recompute()
	return true
}

// Device is one simulated slow-memory device (or an aggregated multi-node
// system, per the perfmodel profile in use).
type Device struct {
	eng   *sim.Engine
	model perfmodel.Memory
	size  int64

	pages map[int64]*[pageSize]byte

	flows   []*Flow
	pending sim.Timer
	lastAdv sim.Time

	// completeDueFn is the pre-bound completion callback recompute hands
	// to eng.After; a method value there would allocate one bound-method
	// closure per arbitration round (see //easyio:hotpath on recompute).
	completeDueFn func()

	// freeGroups recycles emptied arbitration groups (and their flows
	// slice capacity): bursty traffic drains and re-forms groups
	// constantly, and re-forming one must not allocate.
	freeGroups []*dmaGroup
	// freeFlows recycles Flow objects retired by completeDue; fired is
	// its per-call scratch. Steady state starts flows from the pool.
	freeFlows []*Flow
	fired     []*Flow

	// Incrementally maintained arbitration state: population counters and
	// the ordered DMA (engine group, direction) set, updated on flow
	// attach/detach so recompute never rebuilds or sorts them.
	cpuR, cpuW int
	groups     []*dmaGroup

	// Scratch buffers reused across recompute calls (no per-event
	// allocation on the arbitration path).
	scrLim, scrW, scrAl []float64
	scrSat              []bool
	scrFlows            []*Flow

	// Persistence tracking (crash simulation).
	tracking bool
	records  []PersistRecord
	epoch    int
	base     map[int64]*[pageSize]byte

	// dirtyFn, when set, observes every store ([off, off+n)) before it
	// lands — the redundancy layer's epoch dirty capture. It must be
	// allocation-free and must not store through the device (the
	// redundancy tracker filters its own parity region to break the
	// cycle). A dynamic call here is a counted summary hole on the
	// hot paths that reach WriteAt; the callback itself carries its own
	// //easyio:hotpath contract (redundancy.Tracker.MarkDirty).
	dirtyFn func(off int64, n int)
}

// New creates a device of the given byte size.
func New(eng *sim.Engine, model perfmodel.Memory, size int64) *Device {
	d := &Device{
		eng:   eng,
		model: model,
		size:  size,
		pages: make(map[int64]*[pageSize]byte),
	}
	d.completeDueFn = d.completeDue
	return d
}

// SetDirtyFunc installs (or, with nil, removes) the store observer the
// redundancy layer uses for dirty-page capture. At most one observer is
// supported; fn sees every WriteAt before the bytes land, including DMA
// completions and crash-tracking marker stores.
func (d *Device) SetDirtyFunc(fn func(off int64, n int)) { d.dirtyFn = fn }

// Engine returns the simulation engine the device is bound to.
func (d *Device) Engine() *sim.Engine { return d.eng }

// Model returns the device's calibration profile.
func (d *Device) Model() perfmodel.Memory { return d.model }

// Size returns the device capacity in bytes.
func (d *Device) Size() int64 { return d.size }

func (d *Device) check(off int64, n int) {
	if off < 0 || off+int64(n) > d.size {
		panic(fmt.Sprintf("pmem: access [%d, %d) outside device of size %d", off, off+int64(n), d.size))
	}
}

// ReadAt copies device contents at off into b. Unwritten bytes read as
// zero. This is the functional plane only; it consumes no virtual time.
func (d *Device) ReadAt(b []byte, off int64) {
	d.check(off, len(b))
	for len(b) > 0 {
		pg, po := off/pageSize, off%pageSize
		n := pageSize - int(po)
		if n > len(b) {
			n = len(b)
		}
		if p := d.pages[pg]; p != nil {
			copy(b[:n], p[po:int(po)+n])
		} else {
			for i := 0; i < n; i++ {
				b[i] = 0
			}
		}
		b = b[n:]
		off += int64(n)
	}
}

// WriteAt stores b at off. The store is immediately visible to readers but
// only becomes durable at the next Fence (stores between fences may
// survive a crash in any subset — see CrashImage).
func (d *Device) WriteAt(off int64, b []byte) {
	d.check(off, len(b))
	if invariants.Enabled && d.tracking && len(d.records) > 0 &&
		d.records[len(d.records)-1].Epoch > d.epoch {
		panic("pmem: persist record epoch regressed (fence ordering violated)")
	}
	if d.tracking {
		d.record(off, b)
	}
	if d.dirtyFn != nil {
		d.dirtyFn(off, len(b))
	}
	for len(b) > 0 {
		pg, po := off/pageSize, off%pageSize
		n := pageSize - int(po)
		if n > len(b) {
			n = len(b)
		}
		p := d.pages[pg]
		if p == nil {
			p = d.addPage(pg)
		}
		copy(p[po:int(po)+n], b[:n])
		b = b[n:]
		off += int64(n)
	}
}

// record captures one persist record for crash simulation. Tracking is a
// crashmonkey-mode debugging aid, never on during steady-state serving,
// and each record owns a copy of the store.
//
//easyio:coldpath (crash-simulation tracking; off in steady-state serving)
func (d *Device) record(off int64, b []byte) {
	cp := make([]byte, len(b))
	copy(cp, b)
	d.records = append(d.records, PersistRecord{Epoch: d.epoch, Off: off, Data: cp})
}

// addPage demand-allocates the backing page on first touch. Each page is
// allocated once per device lifetime; the steady-state working set hits
// the map.
//
//easyio:coldpath (first-touch demand paging; bounded by the device size)
func (d *Device) addPage(pg int64) *[pageSize]byte {
	p := new([pageSize]byte)
	d.pages[pg] = p
	return p
}

// Read8 reads a 64-bit little-endian value (used for completion buffers
// and log tail pointers).
func (d *Device) Read8(off int64) uint64 {
	var b [8]byte
	d.ReadAt(b[:], off)
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// Write8 stores a 64-bit little-endian value.
func (d *Device) Write8(off int64, v uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	d.WriteAt(off, b[:])
}

// Fence orders persistence: all stores issued before the fence are durable
// in every crash image taken after it.
func (d *Device) Fence() {
	if d.tracking {
		d.epoch++
	}
}

// ---------------------------------------------------------------------------
// Temporal plane: flow arbitration.

// StartFlow begins timing a transfer. OnDone fires from event context once
// the device has streamed spec.Bytes. Zero-length flows complete on the
// next event tick.
func (d *Device) StartFlow(spec FlowSpec) *Flow {
	if spec.Weight <= 0 {
		spec.Weight = 1
	}
	if spec.Bytes <= 0 {
		return d.startZeroFlow(spec)
	}
	var f *Flow
	if n := len(d.freeFlows); n > 0 {
		f = d.freeFlows[n-1]
		d.freeFlows[n-1] = nil
		d.freeFlows = d.freeFlows[:n-1]
		*f = Flow{dev: d, spec: spec, remaining: float64(spec.Bytes)}
	} else {
		f = newFlow(d, spec)
	}
	d.advance()
	d.flows = append(d.flows, f)
	d.attach(f)
	d.recompute()
	return f
}

// newFlow grows the flow population when the free list runs dry —
// bounded by the peak concurrent-transfer count, after which StartFlow
// recycles forever.
//
//easyio:coldpath (flow free-list refill; population reaches high water and stays there)
func newFlow(d *Device, spec FlowSpec) *Flow {
	return &Flow{dev: d, spec: spec, remaining: float64(spec.Bytes)}
}

// startZeroFlow completes a degenerate zero-length transfer on the next
// event tick. Nothing on the steady-state data path issues empty
// transfers (movers skip them before reaching the device).
//
//easyio:coldpath (degenerate zero-length transfer)
func (d *Device) startZeroFlow(spec FlowSpec) *Flow {
	f := &Flow{dev: d, spec: spec, done: true}
	d.eng.After(0, func() {
		if spec.OnDone != nil {
			spec.OnDone()
		}
	})
	return f
}

// ActiveFlows reports the number of in-flight flows.
func (d *Device) ActiveFlows() int { return len(d.flows) }

// dmaKey identifies one (engine group, direction) arbitration domain.
type dmaKey struct {
	group int
	write bool
}

func (k dmaKey) less(o dmaKey) bool {
	if k.group != o.group {
		return k.group < o.group
	}
	return !k.write && o.write
}

// dmaGroup holds the active DMA flows of one (group, direction) domain in
// flow-start order — the same relative order they occupy in d.flows, so
// the max-min gather below visits them exactly as the full scan used to.
type dmaGroup struct {
	key   dmaKey
	flows []*Flow
}

// groupIndex binary-searches the ordered group set for key; found reports
// whether the group at the returned insertion point matches.
func (d *Device) groupIndex(key dmaKey) (int, bool) {
	// Hand-rolled sort.Search: the closure form would allocate on every
	// attach/detach, which sits on the arbitration hot path.
	lo, hi := 0, len(d.groups)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if d.groups[mid].key.less(key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(d.groups) && d.groups[lo].key == key
}

// attach registers f with the incremental arbitration state (O(log k) in
// the number of active domains).
func (d *Device) attach(f *Flow) {
	if f.spec.Kind == FlowCPU {
		if f.spec.Write {
			d.cpuW++
		} else {
			d.cpuR++
		}
		return
	}
	key := dmaKey{f.spec.Group, f.spec.Write}
	i, ok := d.groupIndex(key)
	if !ok {
		d.insertGroup(i, key)
	}
	d.groups[i].flows = append(d.groups[i].flows, f)
}

// insertGroup materializes the (group, direction) arbitration domain at
// insertion point i. Each domain is created on its first active flow;
// with a fixed engine topology the set reaches its full population early
// and detach keeps the emptied structs out of the order, so steady state
// never re-enters this path for a busy domain... the group count is
// bounded by 2x the engine-group count.
//
//easyio:coldpath (first-flow arbitration-domain setup; bounded by the engine topology)
func (d *Device) insertGroup(i int, key dmaKey) {
	var g *dmaGroup
	if n := len(d.freeGroups); n > 0 {
		g = d.freeGroups[n-1]
		d.freeGroups[n-1] = nil
		d.freeGroups = d.freeGroups[:n-1]
		g.key = key
	} else {
		g = &dmaGroup{key: key}
	}
	d.groups = append(d.groups, nil)
	copy(d.groups[i+1:], d.groups[i:])
	d.groups[i] = g
}

// detach unregisters f, keeping the remaining flows' relative order.
func (d *Device) detach(f *Flow) {
	if f.spec.Kind == FlowCPU {
		if f.spec.Write {
			d.cpuW--
		} else {
			d.cpuR--
		}
		return
	}
	key := dmaKey{f.spec.Group, f.spec.Write}
	i, ok := d.groupIndex(key)
	if !ok {
		panic("pmem: detach of flow with no arbitration group")
	}
	g := d.groups[i]
	for j, h := range g.flows {
		if h == f {
			g.flows = append(g.flows[:j], g.flows[j+1:]...)
			break
		}
	}
	if len(g.flows) == 0 {
		d.groups = append(d.groups[:i], d.groups[i+1:]...)
		g.flows = g.flows[:0]
		d.freeGroups = append(d.freeGroups, g)
	}
}

func (d *Device) removeFlow(f *Flow) {
	for i, g := range d.flows {
		if g == f {
			d.flows = append(d.flows[:i], d.flows[i+1:]...)
			d.detach(f)
			return
		}
	}
}

// advance applies elapsed virtual time to all flow progress counters.
func (d *Device) advance() {
	now := d.eng.Now()
	if invariants.Enabled && now < d.lastAdv {
		panic("pmem: device observed virtual time moving backwards")
	}
	dt := float64(now-d.lastAdv) / 1e9
	d.lastAdv = now
	if dt <= 0 {
		return
	}
	for _, f := range d.flows {
		f.remaining -= f.rate * dt
	}
}

// intrinsic returns a flow's standalone rate given the current population
// counts.
func (d *Device) intrinsic(f *Flow, cpuR, cpuW int) float64 {
	switch f.spec.Kind {
	case FlowCPU:
		n := cpuR
		if f.spec.Write {
			n = cpuW
		}
		r := d.model.CPURate(f.spec.Write, n)
		if f.spec.Remote {
			r *= d.model.NUMARemotePenalty
		}
		return r
	default:
		rate := d.model.DMAChanReadRate
		if f.spec.Write {
			rate = d.model.DMAChanWriteRate
		}
		// Bulk descriptors stream disproportionately fast: deep prefetch
		// and amortized record turnaround let one channel consume device
		// bandwidth far beyond its fair share, starving the others —
		// the §2.2 interference finding that motivates B-app splitting.
		if f.spec.Bytes > 64<<10 {
			boost := math.Sqrt(float64(f.spec.Bytes) / (64 << 10))
			if boost > 2.2 {
				boost = 2.2
			}
			rate *= boost
		}
		return rate
	}
}

// maxmin computes a weighted max-min fair allocation of cap across items
// whose demands are given by limit. Result is written into alloc. sat is
// caller-provided scratch (all false on entry) so the arbitration path
// allocates nothing.
func maxmin(limit, weight, alloc []float64, sat []bool, cap float64) {
	n := len(limit)
	remaining := cap
	for {
		var wsum float64
		for i := 0; i < n; i++ {
			if !sat[i] {
				wsum += weight[i]
			}
		}
		if wsum == 0 {
			return
		}
		progressed := false
		for i := 0; i < n; i++ {
			if sat[i] {
				continue
			}
			share := remaining * weight[i] / wsum
			if limit[i] <= share {
				alloc[i] = limit[i]
				remaining -= limit[i]
				sat[i] = true
				progressed = true
			}
		}
		if !progressed {
			for i := 0; i < n; i++ {
				if !sat[i] {
					alloc[i] = remaining * weight[i] / wsum
				}
			}
			return
		}
	}
}

// gather stages the given flows' (limit, weight) pairs into the scratch
// buffers and zeroes the allocation/saturation scratch.
func (d *Device) gather(flows []*Flow) {
	d.scrFlows = d.scrFlows[:0]
	d.scrLim = d.scrLim[:0]
	d.scrW = d.scrW[:0]
	d.scrAl = d.scrAl[:0]
	d.scrSat = d.scrSat[:0]
	for _, f := range flows {
		d.scrFlows = append(d.scrFlows, f)
		d.scrLim = append(d.scrLim, f.limit)
		d.scrW = append(d.scrW, f.spec.Weight)
		d.scrAl = append(d.scrAl, 0)
		d.scrSat = append(d.scrSat, false)
	}
}

// checkArbCounters recounts the incremental arbitration state from
// scratch and panics on divergence (easyio_invariants builds only).
func (d *Device) checkArbCounters() {
	var cpuR, cpuW int
	perKey := map[dmaKey]int{}
	for _, f := range d.flows {
		if f.spec.Kind == FlowCPU {
			if f.spec.Write {
				cpuW++
			} else {
				cpuR++
			}
		} else {
			perKey[dmaKey{f.spec.Group, f.spec.Write}]++
		}
	}
	if cpuR != d.cpuR || cpuW != d.cpuW {
		panic(fmt.Sprintf("pmem: incremental CPU counts (%d,%d) but flows hold (%d,%d)", d.cpuR, d.cpuW, cpuR, cpuW))
	}
	if len(perKey) != len(d.groups) {
		panic(fmt.Sprintf("pmem: %d incremental DMA groups but flows span %d", len(d.groups), len(perKey)))
	}
	for i, g := range d.groups {
		if perKey[g.key] != len(g.flows) {
			panic(fmt.Sprintf("pmem: group %+v holds %d flows, recount says %d", g.key, len(g.flows), perKey[g.key]))
		}
		if i > 0 && !d.groups[i-1].key.less(g.key) {
			panic(fmt.Sprintf("pmem: group set unordered at %d: %+v !< %+v", i, d.groups[i-1].key, g.key))
		}
	}
}

// recompute reallocates bandwidth and schedules the next completion event.
// Must be called with progress already advanced to now. Population counts
// and the ordered DMA group set are maintained incrementally by
// attach/detach, so each call is one allocation-free pass over the flows
// — no map rebuild, no sort.
//
//easyio:hotpath (pmem bandwidth arbitration: runs on every flow attach/detach/completion)
func (d *Device) recompute() {
	d.pending.Stop()
	d.pending = sim.Timer{}
	if len(d.flows) == 0 {
		return
	}
	if invariants.Enabled {
		d.checkArbCounters()
	}

	// Allocation runs per direction, writes first: Optane reads degrade
	// sharply under concurrent write pressure (media contention), which
	// is why CPU throttling cannot protect L-app reads from a DMA-driven
	// GC (§6.4.3). readScale shrinks every read rate (flow intrinsics,
	// engine caps and the DIMM cap alike) by the write utilization.
	var writeRate float64
	for _, write := range [2]bool{true, false} {
		readScale := 1.0
		if !write {
			util := writeRate / d.model.WriteCap
			if util > 1 {
				util = 1
			}
			readScale = 1 - 0.7*util
			if readScale < 0.25 {
				readScale = 0.25
			}
		}

		// Stage 1: flow intrinsics, tightened by per-engine DMA caps.
		// Group membership is insertion-ordered, matching the relative
		// order the flows occupy in d.flows, so the max-min arithmetic
		// visits them exactly as the full rebuild used to.
		for _, f := range d.flows {
			if f.spec.Write != write {
				continue
			}
			f.limit = d.intrinsic(f, d.cpuR, d.cpuW) * readScale
		}
		for _, g := range d.groups {
			if g.key.write != write {
				continue
			}
			cap := d.model.DMACap(write, len(g.flows)) * readScale
			d.gather(g.flows)
			maxmin(d.scrLim, d.scrW, d.scrAl, d.scrSat, cap)
			for j, f := range d.scrFlows {
				f.limit = d.scrAl[j]
			}
		}

		// Stage 2: the DIMM direction cap across all flows.
		cap := d.model.DirCap(write, d.cpuW) * readScale
		d.scrFlows = d.scrFlows[:0]
		d.scrLim = d.scrLim[:0]
		d.scrW = d.scrW[:0]
		d.scrAl = d.scrAl[:0]
		d.scrSat = d.scrSat[:0]
		for _, f := range d.flows {
			if f.spec.Write == write {
				d.scrFlows = append(d.scrFlows, f)
				d.scrLim = append(d.scrLim, f.limit)
				d.scrW = append(d.scrW, f.spec.Weight)
				d.scrAl = append(d.scrAl, 0)
				d.scrSat = append(d.scrSat, false)
			}
		}
		if len(d.scrFlows) == 0 {
			continue
		}
		maxmin(d.scrLim, d.scrW, d.scrAl, d.scrSat, cap)
		for j, f := range d.scrFlows {
			f.rate = d.scrAl[j]
			if f.rate < 1 {
				f.rate = 1 // never stall completely
			}
			if write {
				writeRate += f.rate
			}
		}
	}

	// Next completion.
	best := -1.0
	for _, f := range d.flows {
		t := f.remaining / f.rate
		if t < 0 {
			t = 0
		}
		if best < 0 || t < best {
			best = t
		}
	}
	ns := sim.Duration(best*1e9) + 1 // round up to the next ns
	d.pending = d.eng.After(ns, d.completeDueFn)
}

// completeDue fires flows whose bytes have fully streamed.
func (d *Device) completeDue() {
	d.pending = sim.Timer{}
	d.advance()
	fired := d.fired[:0]
	rest := d.flows[:0]
	for _, f := range d.flows {
		if f.remaining <= 0.5 {
			f.done = true
			fired = append(fired, f)
			d.detach(f)
		} else {
			rest = append(rest, f)
		}
	}
	d.flows = rest
	d.recompute()
	for _, f := range fired {
		if f.spec.OnDone != nil {
			f.spec.OnDone()
		}
	}
	// Retire fired flows to the free list. Callers either discard the
	// *Flow immediately or (dma.Channel) drop their reference before the
	// OnDone chain returns; cancelled flows never come back here, so a
	// retained handle after Cancel stays valid.
	for i, f := range fired {
		*f = Flow{}
		d.freeFlows = append(d.freeFlows, f)
		fired[i] = nil
	}
	d.fired = fired[:0]
}
