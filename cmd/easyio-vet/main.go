// Command easyio-vet runs the EasyIO determinism & locking analyzer
// suite (internal/analysis) over the whole module and exits nonzero on
// findings. CI and check.sh gate every change on it:
//
//	go run ./cmd/easyio-vet ./...          # whole module
//	go run ./cmd/easyio-vet internal/core  # one package (suffix match)
//	go run ./cmd/easyio-vet -list          # show the analyzers
//	go run ./cmd/easyio-vet -only lockbalance ./...
//	go run ./cmd/easyio-vet -json ./...    # findings as a JSON array
//	go run ./cmd/easyio-vet -parallel 8 -sarif vet.sarif ./...
//	go run ./cmd/easyio-vet -partition partition.json ./...
//
// Exit status: 0 clean, 1 findings, 2 load/type-check or I/O failure —
// CI can tell a regression from a broken build.
//
// Full-module runs are incremental by default: per-package findings are
// cached under .easyio-vet-cache/ keyed by a content hash of each
// package's interprocedural closure, so a warm rerun skips both the
// type checker and the analyzers for unchanged packages while printing
// byte-identical output. -nocache forces a cold run; package-filtered
// runs never use the cache (the filtered subgraph cannot hash the
// closure soundly).
//
// Intentional violations are suppressed in source with a rationale:
//
//	//easyio:allow <analyzer...> (why this site is safe)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/easyio-sim/easyio/internal/analysis"
)

// jsonFinding is the machine-readable shape of one diagnostic, stable for
// CI consumers (the GitHub problem matcher consumes the plain-text form;
// -json serves dashboards and editor integrations).
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Trace is the typestate protocol state trace leading to the finding
	// (creation site, each transition, the violating op), oldest first;
	// absent for non-typestate analyzers.
	Trace []jsonTraceStep `json:"trace,omitempty"`
}

// jsonTraceStep is one step of a typestate trace in -json output.
type jsonTraceStep struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
	Desc   string `json:"desc"`
}

// benchReport is the BENCH_vet.json shape: enough to track the vet's own
// wall-clock cost and cache effectiveness across commits.
type benchReport struct {
	WallMS      float64 `json:"wall_ms"`
	Packages    int     `json:"packages"`
	CacheHits   int     `json:"cache_hits"`
	CacheMisses int     `json:"cache_misses"`
	Findings    int     `json:"findings"`
	Workers     int     `json:"workers"`
	// Analyzers breaks the run down per analyzer in milliseconds
	// (typestate analyzers include their engine precomputation); near
	// empty on a fully warm run, where nothing is re-analyzed.
	Analyzers map[string]float64 `json:"analyzers"`
}

func main() {
	list := flag.Bool("list", false, "list registered analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array instead of file:line:col text")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent package analyses")
	sarifPath := flag.String("sarif", "", "also write findings as SARIF 2.1.0 to this file")
	benchPath := flag.String("benchjson", "", "write runner telemetry (BENCH_vet.json shape) to this file")
	cacheDir := flag.String("cache-dir", "", "fact cache directory (default <module root>/.easyio-vet-cache)")
	cacheMax := flag.Int("cache-maxentries", 0, "cache entry cap with LRU eviction (0 = framework default, negative = unlimited)")
	noCache := flag.Bool("nocache", false, "disable the fact cache for this run")
	partitionPath := flag.String("partition", "", "write the concurrency partition report (confinement classes + lock-order graph) as JSON to this file")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			if states, trans, ok := analysis.ProtocolStats(a.Name); ok {
				fmt.Printf("%-14s %s [typestate: %d states, %d transitions]\n", a.Name, a.Doc, states, trans)
			} else {
				fmt.Printf("%-14s %s\n", a.Name, a.Doc)
			}
		}
		return
	}

	analyzers := analysis.All()
	if *only != "" {
		var err error
		analyzers, err = analysis.ByName(strings.Split(*only, ","))
		if err != nil {
			fatal(err)
		}
	}

	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	all, err := analysis.ParseModule(root)
	if err != nil {
		fatal(err)
	}
	pkgs := filterPackages(all, flag.Args())

	// The closure hash is only sound over the full loaded graph; a
	// package-filtered run cannot see edits outside its slice, so it
	// always analyzes fresh.
	var cache *analysis.Cache
	if !*noCache && len(pkgs) == len(all) {
		dir := *cacheDir
		if dir == "" {
			dir = filepath.Join(root, ".easyio-vet-cache")
		}
		cache = analysis.OpenCache(dir)
		if *cacheMax != 0 {
			cache.WithMaxEntries(*cacheMax)
		}
	}

	// Fail loudly on type errors: analyzers degrade silently without
	// full type information, and the tree is expected to compile. The
	// check runs only when the cache actually misses — a warm run never
	// type-checks (entries are only written by type-clean runs).
	typeErrs := 0
	res := analysis.RunAnalyzersOpts(pkgs, analyzers, analysis.RunOptions{
		Workers: *parallel,
		Cache:   cache,
		EnsureTypes: func() {
			analysis.TypeCheck(all)
			for _, pkg := range all {
				for _, e := range pkg.TypeErrors {
					fmt.Fprintf(os.Stderr, "typecheck: %v\n", e)
					typeErrs++
				}
			}
		},
	})
	diags := res.Diags
	wallMS := float64(time.Since(start).Microseconds()) / 1000

	if *asJSON {
		out := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			f := jsonFinding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}
			for _, s := range d.Trace {
				f.Trace = append(f.Trace, jsonTraceStep{
					File:   s.Pos.Filename,
					Line:   s.Pos.Line,
					Column: s.Pos.Column,
					Desc:   s.Desc,
				})
			}
			out = append(out, f)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if *sarifPath != "" {
		if err := writeSARIF(*sarifPath, root, analyzers, diags); err != nil {
			fatal(err)
		}
	}
	if *partitionPath != "" {
		mod := res.Mod
		if mod == nil {
			// A fully warm run never type-checked; the report needs the
			// typed module view, so build it now (cache entries are only
			// written by type-clean runs, so this cannot fail loudly).
			analysis.TypeCheck(all)
			mod = analysis.BuildModule(pkgs)
		}
		if err := analysis.WritePartition(*partitionPath, analysis.BuildPartition(mod, root)); err != nil {
			fatal(err)
		}
	}
	if *benchPath != "" {
		rep := benchReport{
			WallMS:      wallMS,
			Packages:    res.Packages,
			CacheHits:   res.CacheHits,
			CacheMisses: res.CacheMisses,
			Findings:    len(diags),
			Workers:     *parallel,
			Analyzers:   res.AnalyzerMS,
		}
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*benchPath, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	// Exit codes let CI tell a regression from a broken build: findings
	// exit 1, load/type-check failures exit 2 (fatal() below shares 2).
	if len(diags) > 0 || typeErrs > 0 {
		fmt.Fprintf(os.Stderr, "easyio-vet: %d finding(s), %d type error(s)\n", len(diags), typeErrs)
		if typeErrs > 0 {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// SARIF 2.1.0 output, minimal but schema-valid: one run, one rule per
// registered analyzer, one result per finding with a file-relative URI.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
	// RelatedLocations is the typestate protocol trace — creation site
	// and each state transition leading to the violation, oldest first —
	// so SARIF viewers render the path, not just the endpoint.
	RelatedLocations []sarifLocation `json:"relatedLocations,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
	Message          *sarifMessage `json:"message,omitempty"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

func writeSARIF(path, root string, analyzers []*analysis.Analyzer, diags []analysis.Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	relURI := func(filename string) string {
		if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
		return filename
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		r := sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relURI(d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		}
		for _, s := range d.Trace {
			r.RelatedLocations = append(r.RelatedLocations, sarifLocation{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relURI(s.Pos.Filename)},
					Region:           sarifRegion{StartLine: s.Pos.Line, StartColumn: s.Pos.Column},
				},
				Message: &sarifMessage{Text: s.Desc},
			})
		}
		results = append(results, r)
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "easyio-vet", Rules: rules}},
			Results: results,
		}},
	}
	b, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// filterPackages applies the CLI package patterns: "./..." (or no
// arguments) keeps everything; anything else matches import-path or
// directory suffixes.
func filterPackages(pkgs []*analysis.Package, patterns []string) []*analysis.Package {
	keepAll := len(patterns) == 0
	for _, p := range patterns {
		if p == "./..." || p == "..." || p == "." {
			keepAll = true
		}
	}
	if keepAll {
		return pkgs
	}
	var out []*analysis.Package
	for _, pkg := range pkgs {
		for _, p := range patterns {
			p = strings.TrimPrefix(filepath.ToSlash(p), "./")
			p = strings.TrimSuffix(p, "/...")
			if strings.HasSuffix(pkg.Path, p) || strings.Contains(pkg.Path+"/", "/"+p+"/") {
				out = append(out, pkg)
				break
			}
		}
	}
	return out
}

// findModuleRoot walks up from the working directory to go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("easyio-vet: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// fatal reports a non-findings failure (module load, bad flags, output
// I/O) with exit code 2, so `exit 1` always means "findings".
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "easyio-vet:", err)
	os.Exit(2)
}
