// Command easyio-vet runs the EasyIO determinism & locking analyzer
// suite (internal/analysis) over the whole module and exits nonzero on
// findings. CI and check.sh gate every change on it:
//
//	go run ./cmd/easyio-vet ./...          # whole module
//	go run ./cmd/easyio-vet internal/core  # one package (suffix match)
//	go run ./cmd/easyio-vet -list          # show the analyzers
//	go run ./cmd/easyio-vet -only lockbalance ./...
//	go run ./cmd/easyio-vet -json ./...    # findings as a JSON array
//
// Intentional violations are suppressed in source with a rationale:
//
//	//easyio:allow <analyzer...> (why this site is safe)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/easyio-sim/easyio/internal/analysis"
)

// jsonFinding is the machine-readable shape of one diagnostic, stable for
// CI consumers (the GitHub problem matcher consumes the plain-text form;
// -json serves dashboards and editor integrations).
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list registered analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array instead of file:line:col text")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *only != "" {
		var err error
		analyzers, err = analysis.ByName(strings.Split(*only, ","))
		if err != nil {
			fatal(err)
		}
	}

	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fatal(err)
	}

	// Fail loudly on type errors: analyzers degrade silently without
	// full type information, and the tree is expected to compile.
	typeErrs := 0
	for _, pkg := range pkgs {
		for _, e := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "typecheck: %v\n", e)
			typeErrs++
		}
	}

	pkgs = filterPackages(pkgs, flag.Args())
	diags := analysis.RunAnalyzers(pkgs, analyzers)
	if *asJSON {
		out := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonFinding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 || typeErrs > 0 {
		fmt.Fprintf(os.Stderr, "easyio-vet: %d finding(s), %d type error(s)\n", len(diags), typeErrs)
		os.Exit(1)
	}
}

// filterPackages applies the CLI package patterns: "./..." (or no
// arguments) keeps everything; anything else matches import-path or
// directory suffixes.
func filterPackages(pkgs []*analysis.Package, patterns []string) []*analysis.Package {
	keepAll := len(patterns) == 0
	for _, p := range patterns {
		if p == "./..." || p == "..." || p == "." {
			keepAll = true
		}
	}
	if keepAll {
		return pkgs
	}
	var out []*analysis.Package
	for _, pkg := range pkgs {
		for _, p := range patterns {
			p = strings.TrimPrefix(filepath.ToSlash(p), "./")
			p = strings.TrimSuffix(p, "/...")
			if strings.HasSuffix(pkg.Path, p) || strings.Contains(pkg.Path+"/", "/"+p+"/") {
				out = append(out, pkg)
				break
			}
		}
	}
	return out
}

// findModuleRoot walks up from the working directory to go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("easyio-vet: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "easyio-vet:", err)
	os.Exit(1)
}
