// Command easyio-demo is a narrated tour of the EasyIO mechanisms: it
// shows CPU harvesting during an asynchronous write, the two-level lock
// gating a conflicting read, and crash recovery discarding a committed
// write whose DMA never landed.
package main

import (
	"bytes"
	"fmt"
	"log"

	easyio "github.com/easyio-sim/easyio"
)

func main() {
	demoHarvest()
	demoTwoLevelLock()
	demoCrashRecovery()
}

// must unwraps (value, error) returns from the demo's filesystem calls:
// the demo scripts a fixed scenario where no op can legitimately fail.
func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func demoHarvest() {
	fmt.Println("== 1. harvesting the DMA window ==")
	sys, err := easyio.New(easyio.Config{Cores: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	computeDone := 0
	sys.Go(0, "writer", func(t *easyio.Task) {
		f := must(sys.FS.Create(t, "/big"))
		start := t.Now()
		must(sys.FS.WriteAt(t, f, 0, make([]byte, 2<<20))) // ~170us of DMA
		fmt.Printf("   2MB async write finished at %v; %d compute slices ran inside its DMA window\n",
			t.Now()-start, computeDone)
	})
	sys.Go(0, "compute", func(t *easyio.Task) {
		for i := 0; i < 100; i++ {
			t.Compute(easyio.Microsecond)
			computeDone++
			t.Yield()
		}
	})
	sys.Run()
}

func demoTwoLevelLock() {
	fmt.Println("== 2. two-level locking ==")
	sys, err := easyio.New(easyio.Config{Cores: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	var f *easyio.File
	sys.Go(0, "writer", func(t *easyio.Task) {
		f = must(sys.FS.Create(t, "/shared"))
		must(sys.FS.WriteAt(t, f, 0, make([]byte, 1<<20)))
		fmt.Printf("   write's data landed at %v\n", t.Now())
	})
	sys.Go(1, "reader", func(t *easyio.Task) {
		t.Sleep(10 * easyio.Microsecond)
		buf := make([]byte, 4096)
		must(sys.FS.ReadAt(t, f, 0, buf))
		fmt.Printf("   conflicting read returned at %v (gated on the in-flight DMA)\n", t.Now())
	})
	sys.Run()
}

func demoCrashRecovery() {
	fmt.Println("== 3. orderless crash recovery ==")
	sys, err := easyio.New(easyio.Config{Cores: 1, TrackPersistence: true})
	if err != nil {
		log.Fatal(err)
	}
	old := bytes.Repeat([]byte{'O'}, 256<<10)
	sys.Go(0, "w", func(t *easyio.Task) {
		f := must(sys.FS.Create(t, "/f"))
		must(sys.FS.WriteAt(t, f, 0, old))
		must(sys.FS.WriteAt(t, f, 0, bytes.Repeat([]byte{'N'}, 256<<10)))
	})
	// Stop the world while the second write's DMA is in flight (its
	// metadata is already committed).
	sys.RunFor(60 * easyio.Microsecond)
	sys2, err := sys.Crash()
	sys.Close()
	if err != nil {
		log.Fatal(err)
	}
	defer sys2.Close()
	f, err := sys2.FS.Open(nil, "/f")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	got := make([]byte, 1)
	must(sys2.FS.FS.ReadAt(nil, f, 0, got))
	fmt.Printf("   after crash mid-DMA, recovery exposes the %c version (SN not durable -> entry discarded)\n", got[0])
}
