// Command easyio-bench regenerates every table and figure of the EasyIO
// paper's evaluation on the simulated testbed.
//
// Usage:
//
//	easyio-bench -exp all            # everything (minutes)
//	easyio-bench -exp fig9 -quick    # one figure, short windows
//	easyio-bench -exp fig2,fig3,table2
//	easyio-bench -exp all -parallel 8 -benchjson BENCH_sim.json
//
// Experiments: fig1 fig2 fig3 fig4 fig8 fig9 fig10 fig11 fig12 table1
// table2. Independent sweep points fan out across -parallel workers; the
// output is byte-identical for any worker count (each sweep point is its
// own virtual machine, and results are printed in sweep order).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/easyio-sim/easyio/internal/bench"
	"github.com/easyio-sim/easyio/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments (fig1..fig12, table1, table2, ablations, all)")
	quick := flag.Bool("quick", false, "short measurement windows (smoke test)")
	seed := flag.Uint64("seed", 42, "simulation seed")
	points := flag.Int("crashpoints", 1000, "crash states per Table 2 workload")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent sweep-point jobs (output is identical for any value)")
	simworkers := flag.Int("simworkers", runtime.GOMAXPROCS(0), "goroutines per multi-domain simulation (output is identical for any value)")
	benchjson := flag.String("benchjson", "", "write kernel perf + per-experiment wall-clock JSON to this file")
	flag.Parse()

	if *parallel < 1 {
		*parallel = 1
	}
	bench.Workers = *parallel
	if *simworkers < 1 {
		*simworkers = 1
	}
	bench.SimWorkers = *simworkers

	measure := 20 * sim.Millisecond
	raw := 10 * sim.Millisecond
	appMeasure := 120 * sim.Millisecond
	if *quick {
		measure = 4 * sim.Millisecond
		raw = 3 * sim.Millisecond
		appMeasure = 30 * sim.Millisecond
		if *points > 100 {
			*points = 100
		}
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	ok := true
	report := &bench.Report{Workers: *parallel, SimWorkers: *simworkers}
	run := func(name string, fn func()) {
		if all || want[name] {
			fmt.Printf("==== %s ====\n", name)
			start := time.Now()
			fn()
			report.Experiments = append(report.Experiments, bench.ExperimentTiming{
				Name:   name,
				WallMS: float64(time.Since(start).Microseconds()) / 1000,
			})
		}
	}

	run("table1", func() { bench.Table1(os.Stdout) })
	run("fig1", func() { bench.Fig1(os.Stdout) })
	run("fig2", func() { bench.Fig2(os.Stdout, raw) })
	run("fig3", func() { bench.Fig3(os.Stdout, raw) })
	run("fig4", func() { bench.Fig4(os.Stdout, raw) })
	run("fig8", func() { bench.Fig8(os.Stdout) })
	run("fig9", func() { bench.Fig9(os.Stdout, measure, *seed) })
	run("fig10", func() { bench.Fig10(os.Stdout, appMeasure, *seed) })
	run("fig11", func() { bench.Fig11(os.Stdout, measure, *seed) })
	run("fig12", func() { bench.Fig12(os.Stdout, 6*sim.Millisecond, *seed) })
	run("ablations", func() {
		bench.AblationDSAMode(os.Stdout, 4*sim.Millisecond, *seed)
		bench.AblationPollCost(os.Stdout, measure, *seed)
		bench.AblationOffloadThreshold(os.Stdout)
	})
	run("table2", func() {
		if !bench.Table2(os.Stdout, *points) {
			ok = false
		}
	})

	if *benchjson != "" {
		report.Kernel = bench.MeasureKernelPerf()
		report.Fig9Scaling, report.Fig9Speedup4W = bench.MeasureFig9Scaling(measure, *seed)
		f, err := os.Create(*benchjson)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := report.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if !ok {
		os.Exit(1)
	}
}
