// Command easyio-serve runs the deterministic multi-tenant serving
// experiment: an open-loop load generator (Poisson, burst and diurnal
// tenants) over the EasyIO filesystem, swept across offered load once
// per admission policy, printing latency-vs-load curves (p50/p99/p999),
// shed-rate and goodput tables.
//
// Usage:
//
//	easyio-serve                          # full sweep + million-request cell
//	easyio-serve -quick                   # short windows, no capacity cell
//	easyio-serve -parallel 4              # output identical for any value
//	easyio-serve -json BENCH_serve.json   # committed artifact
//	easyio-serve -redjson BENCH_redundancy.json  # committed parity artifact
//
// After the serving sweep it runs the redundancy experiment: the same
// tenant mix with Vilamb-style epoch-batched parity riding the harvested
// windows (and the eager per-touch baseline for contrast).
//
// Every reported number is a virtual-time observable, so repeated runs
// with the same -seed are byte-identical for any -parallel value.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"github.com/easyio-sim/easyio/internal/bench"
	"github.com/easyio-sim/easyio/internal/sim"
)

func main() {
	quick := flag.Bool("quick", false, "short measurement windows, skip the million-request cell (smoke test)")
	seed := flag.Uint64("seed", 42, "simulation seed")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent sweep-point jobs (output is identical for any value)")
	simworkers := flag.Int("simworkers", runtime.GOMAXPROCS(0), "goroutines per multi-domain simulation (output is identical for any value)")
	jsonPath := flag.String("json", "", "write the serve report JSON to this file")
	redJSONPath := flag.String("redjson", "", "write the redundancy report JSON to this file")
	million := flag.Bool("million", false, "force the million-request capacity cell even with -quick")
	flag.Parse()

	if *parallel < 1 {
		*parallel = 1
	}
	bench.Workers = *parallel
	if *simworkers < 1 {
		*simworkers = 1
	}
	bench.SimWorkers = *simworkers

	measure := 20 * sim.Millisecond
	runMillion := true
	if *quick {
		measure = 5 * sim.Millisecond
		runMillion = false
	}
	if *million {
		runMillion = true
	}

	fmt.Println("==== serve ====")
	report := bench.Serve(os.Stdout, measure, *seed, runMillion)

	fmt.Println("==== redundancy ====")
	redReport := bench.Redundancy(os.Stdout, measure, *seed)

	if *jsonPath != "" {
		writeJSON(*jsonPath, report.WriteJSON)
	}
	if *redJSONPath != "" {
		writeJSON(*redJSONPath, redReport.WriteJSON)
	}
}

func writeJSON(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := write(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
