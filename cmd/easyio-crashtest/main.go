// Command easyio-crashtest runs the CrashMonkey-style crash-consistency
// suite (Table 2 of the paper): four workloads, N crash states each,
// every state remounted and checked against the operation-boundary
// oracle. Exits non-zero on any failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/easyio-sim/easyio/internal/crashmonkey"
	"github.com/easyio-sim/easyio/internal/stats"
)

func main() {
	points := flag.Int("points", 1000, "crash states per workload")
	seed := flag.Uint64("seed", 42, "sampling seed")
	verbose := flag.Bool("v", false, "print every failure")
	flag.Parse()

	tb := stats.NewTable("Workload", "Description", "Total Crash Points", "Total Passed")
	failed := 0
	for _, wl := range crashmonkey.All() {
		rep, err := crashmonkey.Test(wl, crashmonkey.Config{TargetPoints: *points, Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", wl.Name, err)
			os.Exit(1)
		}
		tb.AddRow(rep.Name, wl.Description, rep.CrashPoints, rep.Passed)
		failed += rep.Failed()
		if *verbose {
			for _, f := range rep.Failures {
				fmt.Fprintf(os.Stderr, "FAIL %s: %s\n", rep.Name, f)
			}
		}
	}
	fmt.Print(tb)
	if failed > 0 {
		fmt.Printf("%d crash states FAILED\n", failed)
		os.Exit(1)
	}
	fmt.Println("all crash states passed")
}
