// Quickstart: create, write, read, rename and list files on an EasyIO
// system, and observe how little CPU the asynchronous writes consume.
package main

import (
	"fmt"
	"log"

	easyio "github.com/easyio-sim/easyio"
)

// must unwraps (value, error) from the example's filesystem calls; the
// scripted scenario has no legitimate failure path.
func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func main() {
	sys, err := easyio.New(easyio.Config{Cores: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	sys.Go(-1, "app", func(t *easyio.Task) {
		// Directories and files behave POSIX-ish; every committed
		// operation is durable (no fsync needed on persistent memory).
		if err := sys.FS.Mkdir(t, "/data"); err != nil {
			log.Fatal(err)
		}
		f, err := sys.FS.Create(t, "/data/report.txt")
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()

		payload := make([]byte, 256<<10)
		for i := range payload {
			payload[i] = byte('a' + i%26)
		}
		// The write returns once durable: its data moved via the on-chip
		// DMA engine while this core could have run other uthreads.
		if _, err := sys.FS.WriteAt(t, f, 0, payload); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d KB at virtual time %v\n", len(payload)>>10, t.Now())

		buf := make([]byte, 26)
		must(sys.FS.ReadAt(t, f, 0, buf))
		fmt.Printf("read back: %q\n", buf)

		if err := sys.FS.Rename(t, "/data/report.txt", "/data/final.txt"); err != nil {
			log.Fatal(err)
		}
		st := must(sys.FS.Stat(t, "/data/final.txt"))
		fmt.Printf("renamed; size=%d bytes, nlink=%d\n", st.Size, st.Nlink)

		names := must(sys.FS.Readdir(t, "/data"))
		fmt.Printf("directory listing: %v\n", names)
	})
	sys.Run()
	fmt.Printf("total virtual time: %v, CPU busy fraction: %.2f\n", sys.Now(), sys.BusyFraction())
}
