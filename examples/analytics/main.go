// Analytics pipeline: a real data-processing job on EasyIO — compressed
// logs are decompressed (real LZ codec), scanned with a real regexp, and
// a serialized graph is loaded and traversed — all bytes flowing through
// the simulated slow-memory filesystem.
package main

import (
	"fmt"
	"log"
	"strings"

	easyio "github.com/easyio-sim/easyio"
	"github.com/easyio-sim/easyio/internal/apps"
	"github.com/easyio-sim/easyio/internal/codec"
	"github.com/easyio-sim/easyio/internal/graph"
)

// must unwraps (value, error) from the example's filesystem calls; the
// scripted scenario has no legitimate failure path.
func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func main() {
	sys, err := easyio.New(easyio.Config{Cores: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Build a synthetic web log and a follower graph on the "host", then
	// ingest both into slow memory compressed.
	var sb strings.Builder
	for i := 0; i < 5000; i++ {
		status := 200
		if i%17 == 0 {
			status = 500
		}
		fmt.Fprintf(&sb, "GET /item/%d HTTP/1.1 status=%d\n", i%300, status)
	}
	logPlain := []byte(sb.String())
	logCompressed := codec.Compress(nil, logPlain)
	g := graph.Random(2000, 8, 7)
	graphBlob := g.Marshal()

	done := make(chan struct{}, 3)
	_ = done

	sys.Go(0, "ingest", func(t *easyio.Task) {
		f := must(sys.FS.Create(t, "/logs.z"))
		must(sys.FS.WriteAt(t, f, 0, logCompressed))
		gf := must(sys.FS.Create(t, "/graph.bin"))
		must(sys.FS.WriteAt(t, gf, 0, graphBlob))
		fmt.Printf("[%v] ingested %d KB compressed logs + %d KB graph\n",
			t.Now(), len(logCompressed)>>10, len(graphBlob)>>10)

		// Stage 1: decompress the logs inside the filesystem.
		n, err := apps.SnappyDecompressFile(t, sys.FS, "/logs.z", "/logs.txt")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%v] decompressed to %d KB (ratio %.1fx)\n",
			t.Now(), n>>10, float64(n)/float64(len(logCompressed)))

		// Stage 2 and 3 run as separate uthreads, interleaving their I/O.
		sys.Go(1, "grep", func(t *easyio.Task) {
			errs, err := apps.GrepFile(t, sys.FS, `status=500`, "/logs.txt")
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("[%v] grep: %d error lines\n", t.Now(), errs)
		})
		sys.Go(2, "bfs", func(t *easyio.Task) {
			reach, err := apps.BFSFromFile(t, sys.FS, "/graph.bin", 0)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("[%v] bfs: %d of %d vertices reachable\n", t.Now(), reach, g.Len())
		})
	})
	sys.Run()
	fmt.Printf("pipeline finished at %v\n", sys.Now())
}
