// Webserver + GC colocation: a latency-critical web server shares the
// machine with a bulk garbage collector. The channel manager (§4.4 of the
// paper) funnels the GC through one throttled DMA channel and adapts its
// bandwidth budget to the web server's SLO — run with and without
// -throttle to see the difference.
package main

import (
	"flag"
	"fmt"
	"log"

	easyio "github.com/easyio-sim/easyio"
	"github.com/easyio-sim/easyio/internal/core"
)

// must unwraps (value, error) from the example's filesystem calls; the
// scripted scenario has no legitimate failure path.
func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func main() {
	throttle := flag.Bool("throttle", true, "enable the channel manager's QoS loop")
	flag.Parse()

	sys, err := easyio.New(easyio.Config{
		Cores:   2,
		Manager: core.ManagerOptions{Adaptive: true, BLimit: 8e9},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	mgr := sys.FS.Manager()
	slo := 25 * easyio.Microsecond
	lapp := mgr.RegisterLApp(slo)
	if *throttle {
		mgr.Start()
	}

	web := must(sys.FS.Create(nil, "/site-index"))
	must(sys.FS.FS.WriteAt(nil, web, 0, make([]byte, 1<<20)))
	gcDst := must(sys.FS.Create(nil, "/gc-target"))

	end := easyio.Time(8 * easyio.Millisecond)

	// Web server: closed loop of 64 KB page reads, reporting latency to
	// the SLO monitor.
	var worst, count easyio.Duration
	var sum easyio.Duration
	sys.Go(0, "webserver", func(t *easyio.Task) {
		buf := make([]byte, 64<<10)
		for t.Now() < end {
			start := t.Now()
			must(sys.FS.ReadAt(t, web, 0, buf))
			d := easyio.Duration(t.Now() - start)
			lapp.Report(d)
			sum += d
			count++
			if d > worst {
				worst = d
			}
			t.Sleep(20 * easyio.Microsecond)
		}
	})

	// GC: back-to-back 2 MB bulk writes on the bandwidth class.
	var gcBytes int64
	sys.Go(1, "gc", func(t *easyio.Task) {
		buf := make([]byte, 2<<20)
		for t.Now() < end {
			must(sys.FS.WriteAtClass(t, gcDst, 0, buf, easyio.ClassB))
			gcBytes += int64(len(buf))
		}
	})

	sys.RunFor(easyio.Duration(end))
	fmt.Printf("throttling=%v\n", *throttle)
	fmt.Printf("web server: %d requests, mean %.1fus, worst %.1fus (SLO %.0fus)\n",
		count, (sum / count).Micros(), worst.Micros(), slo.Micros())
	gcRate := float64(gcBytes) / (float64(end) / 1e9) / 1e9
	fmt.Printf("gc moved %.2f GB/s; final B-app budget %.2f GB/s; %d CHANCMD actions\n",
		gcRate, mgr.BLimit()/1e9, mgr.SuspendCount())
}
