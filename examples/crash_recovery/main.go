// Crash recovery: demonstrates EasyIO's orderless write window. A write's
// metadata commits before its DMA copy lands; if power fails in between,
// recovery compares the log entry's SN against the persistent completion
// buffer and discards the entry, exposing the previous (consistent)
// version rather than torn data.
package main

import (
	"bytes"
	"fmt"
	"log"

	easyio "github.com/easyio-sim/easyio"
)

// must unwraps (value, error) from the example's filesystem calls; the
// scripted scenario has no legitimate failure path.
func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func main() {
	sys, err := easyio.New(easyio.Config{Cores: 1, TrackPersistence: true})
	if err != nil {
		log.Fatal(err)
	}

	oldVersion := bytes.Repeat([]byte("v1 "), 100_000) // ~300 KB
	newVersion := bytes.Repeat([]byte("v2 "), 100_000)

	var commitAt easyio.Time
	sys.Go(0, "writer", func(t *easyio.Task) {
		f := must(sys.FS.Create(t, "/config"))
		must(sys.FS.WriteAt(t, f, 0, oldVersion))
		commitAt = t.Now()
		// The overwrite's metadata commits ~10us in; its 300KB DMA takes
		// ~25us more.
		must(sys.FS.WriteAt(t, f, 0, newVersion))
	})

	// Let the simulation run just past the second write's metadata
	// commit, then cut power.
	sys.RunFor(easyio.Duration(commitAt) + 60*easyio.Microsecond)
	fmt.Printf("power failure at %v (second write's DMA in flight)\n", sys.Now())

	recovered, err := sys.Crash()
	sys.Close()
	if err != nil {
		log.Fatal(err)
	}
	defer recovered.Close()

	f, err := recovered.FS.Open(nil, "/config")
	if err != nil {
		log.Fatal(err)
	}
	got := make([]byte, f.Size())
	must(recovered.FS.FS.ReadAt(nil, f, 0, got))
	switch {
	case bytes.Equal(got, oldVersion):
		fmt.Println("recovered: consistent OLD version (incomplete write discarded by SN check)")
	case bytes.Equal(got, newVersion):
		fmt.Println("recovered: NEW version (DMA had landed before the crash)")
	default:
		fmt.Println("BUG: torn data after recovery!")
	}

	// The file stays fully usable after recovery.
	recovered.Go(0, "resume", func(t *easyio.Task) {
		must(recovered.FS.WriteAt(t, f, 0, []byte("post-crash write")))
	})
	recovered.Run()
	buf := make([]byte, 16)
	must(recovered.FS.FS.ReadAt(nil, f, 0, buf))
	fmt.Printf("post-crash write works: %q\n", buf)
}
