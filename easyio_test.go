package easyio

import (
	"bytes"
	"testing"
)

func TestQuickstart(t *testing.T) {
	sys, err := New(Config{Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	var got []byte
	sys.Go(-1, "writer", func(task *Task) {
		f, err := sys.FS.Create(task, "/hello")
		if err != nil {
			t.Error(err)
			return
		}
		sys.FS.WriteAt(task, f, 0, bytes.Repeat([]byte("slow memory "), 4000))
		got = make([]byte, f.Size())
		sys.FS.ReadAt(task, f, 0, got)
	})
	sys.Run()
	if !bytes.HasPrefix(got, []byte("slow memory ")) || len(got) != 48000 {
		t.Fatalf("roundtrip failed: %d bytes", len(got))
	}
	if sys.Now() == 0 {
		t.Fatal("virtual clock did not advance")
	}
}

func TestDefaultsApplied(t *testing.T) {
	sys, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.Runtime.NumCores() != 4 {
		t.Fatalf("cores = %d", sys.Runtime.NumCores())
	}
	if len(sys.Engines) != 2 || sys.Engines[0].NumChannels() != 8 {
		t.Fatal("engine defaults wrong")
	}
}

func TestCrashRecoversDurableState(t *testing.T) {
	sys, err := New(Config{Cores: 1, TrackPersistence: true})
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xEE}, 32<<10)
	sys.Go(0, "w", func(task *Task) {
		f, _ := sys.FS.Create(task, "/durable")
		sys.FS.WriteAt(task, f, 0, data)
	})
	sys.Run()
	sys2, err := sys.Crash()
	sys.Close()
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	f, err := sys2.FS.Open(nil, "/durable")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	sys2.FS.FS.ReadAt(nil, f, 0, got)
	if !bytes.Equal(got, data) {
		t.Fatal("durable write lost across crash")
	}
}

func TestBusyFractionReflectsHarvesting(t *testing.T) {
	// One core, a parked async write plus compute: the core stays mostly
	// busy because the window is harvested.
	sys, _ := New(Config{Cores: 1})
	defer sys.Close()
	sys.Go(0, "w", func(task *Task) {
		f, _ := sys.FS.Create(task, "/f")
		sys.FS.WriteAt(task, f, 0, make([]byte, 1<<20))
	})
	sys.Go(0, "c", func(task *Task) {
		for i := 0; i < 100; i++ {
			task.Compute(Microsecond)
			task.Yield()
		}
	})
	sys.Run()
	if bf := sys.BusyFraction(); bf < 0.8 {
		t.Fatalf("busy fraction = %.2f; harvesting failed", bf)
	}
}
