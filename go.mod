module github.com/easyio-sim/easyio

go 1.22
