package easyio

// One testing.B benchmark per table and figure of the paper's evaluation.
// Each iteration regenerates the experiment with shortened measurement
// windows (the full-length runs are `go run ./cmd/easyio-bench -exp all`).
// Reported metrics are wall-clock per experiment regeneration; the
// experiment outputs themselves are deterministic in virtual time.

import (
	"io"
	"testing"

	"github.com/easyio-sim/easyio/internal/bench"
	"github.com/easyio-sim/easyio/internal/sim"
)

const (
	benchRawWindow = 2 * sim.Millisecond
	benchFSWindow  = 3 * sim.Millisecond
	benchAppWindow = 25 * sim.Millisecond
)

func BenchmarkTable1AppConfigs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table1(io.Discard)
	}
}

func BenchmarkFig1LatencyBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig1(io.Discard)
	}
}

func BenchmarkFig2MemcpyVsDMA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig2(io.Discard, benchRawWindow)
	}
}

func BenchmarkFig3ChannelScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig3(io.Discard, benchRawWindow)
	}
}

func BenchmarkFig4Interference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig4(io.Discard, benchRawWindow)
	}
}

func BenchmarkFig8SingleThreadLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig8(io.Discard)
	}
}

func BenchmarkFig9ThroughputLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig9(io.Discard, benchFSWindow, 42)
	}
}

func BenchmarkFig10Applications(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig10(io.Discard, benchAppWindow, 42)
	}
}

func BenchmarkFig11Ablations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig11(io.Discard, benchFSWindow, 42)
	}
}

func BenchmarkFig12Throttling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig12(io.Discard, 4*sim.Millisecond, 42)
	}
}

func BenchmarkTable2CrashConsistency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !bench.Table2(io.Discard, 60) {
			b.Fatal("crash consistency failure")
		}
	}
}

func BenchmarkAblationDSAMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.AblationDSAMode(io.Discard, benchRawWindow, 42)
	}
}

func BenchmarkAblationPollCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.AblationPollCost(io.Discard, benchFSWindow, 42)
	}
}

func BenchmarkAblationOffloadThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.AblationOffloadThreshold(io.Discard)
	}
}
